"""Tests for run metrics and the async (alpha-synchronizer) engine."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.congest.config import CongestConfig
from repro.congest.engine import RunResult
from repro.congest.errors import (
    CongestError,
    CongestionViolation,
    MessageSizeViolation,
)
from repro.congest.message import Message
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.network import Network
from repro.congest.node import Protocol
from repro.congest.scheduler import run_protocol
from repro.congest.synchronizer import AlphaSynchronizer, AsyncEngine, AsyncRunResult
from repro.primitives.bfs_tree import KEY_PARTICIPANT, MinIdBFSTreeProtocol
from repro.primitives.leader_election import MinIdFloodingProtocol


class TestRoundMetrics:
    def test_observe_message_accumulates(self):
        rm = RoundMetrics(round_index=1)
        rm.observe_message(10)
        rm.observe_message(30)
        assert rm.messages_sent == 2
        assert rm.bits_sent == 40
        assert rm.max_message_bits == 30


class TestRunMetrics:
    def test_absorb_round(self):
        run = RunMetrics()
        rm = RoundMetrics(round_index=1)
        rm.observe_message(16)
        run.absorb_round(rm, keep_trace=True)
        assert run.rounds == 1
        assert run.total_messages == 1
        assert run.total_bits == 16
        assert run.per_round == [rm]

    def test_absorb_round_without_trace(self):
        run = RunMetrics()
        rm = RoundMetrics(round_index=1)
        run.absorb_round(rm, keep_trace=False)
        assert run.per_round == []

    def test_merge_adds_control_overhead(self):
        a = RunMetrics(ack_messages=3, safety_messages=5)
        b = RunMetrics(ack_messages=2, safety_messages=1)
        a.merge(b, label="async-phase")
        assert a.ack_messages == 5
        assert a.safety_messages == 6
        assert a.control_messages == 11
        assert a.protocol_breakdown["async-phase"].control_messages == 3

    def test_merge_adds_rounds_and_maxes_bits(self):
        a = RunMetrics(rounds=3, total_messages=5, total_bits=100, max_message_bits=20)
        b = RunMetrics(rounds=2, total_messages=1, total_bits=10, max_message_bits=40)
        a.merge(b, label="phase-b")
        assert a.rounds == 5
        assert a.total_messages == 6
        assert a.max_message_bits == 40
        assert "phase-b" in a.protocol_breakdown
        assert a.protocol_breakdown["phase-b"].rounds == 2

    def test_merge_same_label_twice(self):
        a = RunMetrics()
        b = RunMetrics(rounds=2, total_messages=3, total_bits=30, max_message_bits=10)
        a.merge(b, label="x")
        a.merge(b, label="x")
        assert a.protocol_breakdown["x"].rounds == 4

    def test_mean_message_bits(self):
        a = RunMetrics(total_messages=4, total_bits=100)
        assert a.mean_message_bits == 25.0
        assert RunMetrics().mean_message_bits == 0.0

    def test_as_row(self):
        a = RunMetrics(rounds=2, total_messages=3, max_message_bits=9, max_messages_per_round=7)
        assert a.as_row() == (2, 3, 9, 7)


class _CountdownProtocol(Protocol):
    """Deterministic protocol exercising several pulses for the synchronizer."""

    name = "countdown"
    quiesce_terminates = True

    def on_start(self, ctx):
        ctx.state["value"] = ctx.node_id
        ctx.send_all(Message(kind="v", payload=(ctx.node_id,)))

    def on_round(self, ctx, inbox):
        best = ctx.state["value"]
        improved = False
        for inbound in inbox:
            if inbound.payload[0] < best:
                best = inbound.payload[0]
                improved = True
        if improved:
            ctx.state["value"] = best
            ctx.send_all(Message(kind="v", payload=(best,)))

    def collect_output(self, ctx):
        return ctx.state["value"]


class TestAlphaSynchronizer:
    def test_matches_synchronous_outputs_on_path(self):
        graph = nx.path_graph(8)
        network = Network(graph, seed=3)
        sync = run_protocol(network, _CountdownProtocol())
        runner = AlphaSynchronizer(
            Network(graph, seed=3), _CountdownProtocol(), delay_rng=random.Random(9)
        )
        async_result = runner.run()
        assert async_result.outputs == sync.outputs
        assert async_result.pulses == sync.metrics.rounds

    def test_matches_on_random_graph(self):
        graph = nx.gnp_random_graph(20, 0.2, seed=5)
        sync = run_protocol(Network(graph, seed=1), _CountdownProtocol())
        async_result = AlphaSynchronizer(
            Network(graph, seed=1), _CountdownProtocol(), delay_rng=random.Random(2)
        ).run()
        assert async_result.outputs == sync.outputs

    def test_control_overhead_positive(self):
        graph = nx.cycle_graph(6)
        async_result = AlphaSynchronizer(
            Network(graph, seed=2), _CountdownProtocol(), delay_rng=random.Random(4)
        ).run()
        # Every protocol message triggers an ack, and every pulse a safety
        # notification per edge direction: overhead strictly exceeds payload.
        assert async_result.control_messages > async_result.protocol_messages
        assert async_result.completion_time > 0

    def test_explicit_pulse_budget(self):
        graph = nx.path_graph(5)
        async_result = AlphaSynchronizer(
            Network(graph, seed=2),
            _CountdownProtocol(),
            pulses=2,
            delay_rng=random.Random(4),
        ).run()
        assert async_result.pulses == 2

    def test_bad_delays_rejected(self):
        graph = nx.path_graph(3)
        with pytest.raises(ValueError):
            AlphaSynchronizer(
                Network(graph), _CountdownProtocol(), min_delay=0.0, max_delay=1.0
            )
        with pytest.raises(ValueError):
            AlphaSynchronizer(
                Network(graph), _CountdownProtocol(), min_delay=0.5, max_delay=0.1
            )

    def test_bfs_tree_same_roots_async(self):
        graph = nx.gnp_random_graph(16, 0.3, seed=11)
        per_node = {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}
        sync = run_protocol(
            Network(graph, seed=4), MinIdBFSTreeProtocol(), per_node_inputs=per_node
        )
        async_result = AlphaSynchronizer(
            Network(graph, seed=4),
            MinIdBFSTreeProtocol(),
            per_node_inputs=per_node,
            delay_rng=random.Random(8),
        ).run()
        sync_roots = {v: out.root for v, out in sync.outputs.items()}
        async_roots = {v: out.root for v, out in async_result.outputs.items()}
        assert sync_roots == async_roots

    def test_leader_election_async_equivalence(self):
        graph = nx.cycle_graph(9)
        per_node = {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}
        sync = run_protocol(
            Network(graph, seed=4), MinIdFloodingProtocol(), per_node_inputs=per_node
        )
        async_result = AlphaSynchronizer(
            Network(graph, seed=4),
            MinIdFloodingProtocol(),
            per_node_inputs=per_node,
            delay_rng=random.Random(1),
        ).run()
        assert sync.outputs == async_result.outputs


class TestAsyncEngineResult:
    """The async engine returns a real RunResult with wired RunMetrics."""

    def test_result_is_run_result_with_run_metrics(self):
        graph = nx.path_graph(8)
        sync = run_protocol(Network(graph, seed=3), _CountdownProtocol())
        result = run_protocol(
            Network(graph, seed=3), _CountdownProtocol(), engine="async"
        )
        assert isinstance(result, AsyncRunResult)
        assert isinstance(result, RunResult)
        assert isinstance(result.metrics, RunMetrics)
        # Protocol accounting is bit-identical to the synchronous run,
        # including the per-round trace.
        assert result.metrics.rounds == sync.metrics.rounds
        assert result.metrics.total_messages == sync.metrics.total_messages
        assert result.metrics.total_bits == sync.metrics.total_bits
        assert result.metrics.max_message_bits == sync.metrics.max_message_bits
        assert [
            (r.round_index, r.messages_sent, r.bits_sent, r.active_nodes)
            for r in result.metrics.per_round
        ] == [
            (r.round_index, r.messages_sent, r.bits_sent, r.active_nodes)
            for r in sync.metrics.per_round
        ]
        # Control overhead lives in dedicated fields, never in the totals.
        assert result.metrics.ack_messages == result.metrics.total_messages
        assert result.metrics.safety_messages > 0

    def test_back_compat_views_mirror_metrics(self):
        graph = nx.cycle_graph(6)
        result = AlphaSynchronizer(
            Network(graph, seed=2), _CountdownProtocol(), delay_rng=random.Random(4)
        ).run()
        assert result.protocol_messages == result.metrics.total_messages
        assert result.protocol_bits == result.metrics.total_bits
        assert result.control_messages == result.metrics.control_messages

    def test_respects_record_round_metrics_flag(self):
        graph = nx.path_graph(6)
        result = run_protocol(
            Network(graph, seed=1),
            _CountdownProtocol(),
            config=CongestConfig(engine="async", record_round_metrics=False),
        )
        assert result.metrics.rounds > 0
        assert result.metrics.per_round == []

    def test_selectable_via_config_and_argument(self):
        graph = nx.path_graph(5)
        by_config = run_protocol(
            Network(graph, seed=8),
            _CountdownProtocol(),
            config=CongestConfig(engine="async"),
        )
        by_argument = run_protocol(
            Network(graph, seed=8), _CountdownProtocol(), engine="async"
        )
        assert by_config.outputs == by_argument.outputs
        assert by_config.pulses == by_argument.pulses


class _BigTalker(Protocol):
    name = "big-talker"
    quiesce_terminates = True

    def on_start(self, ctx):
        ctx.send_all(Message(kind="big", payload=None, bits=10 ** 6))

    def on_round(self, ctx, inbox):
        ctx.halt()


class _DoubleSender(Protocol):
    name = "double-sender"
    quiesce_terminates = True

    def on_start(self, ctx):
        if ctx.node_id == 0:
            ctx.send(1, Message(kind="a", payload=(1,)))
            ctx.send(1, Message(kind="b", payload=(2,)))

    def on_round(self, ctx, inbox):
        if inbox:
            ctx.state["kinds"] = [inbound.kind for inbound in inbox]
        ctx.halt()

    def collect_output(self, ctx):
        return ctx.state.get("kinds")


class TestAsyncModelRuleEnforcement:
    """Regression tests: the async dispatch path itself enforces the model
    rules with the same exception types as the synchronous engines.

    An explicit pulse budget skips the synchronous pre-run, so the only
    place these violations can surface is ``_dispatch_pulse_output`` — the
    exact code path that previously let oversized messages sail through and
    raised a bare ``ProtocolError`` for congestion.
    """

    def test_oversized_message_raises_message_size_violation(self):
        engine = AsyncEngine(pulses=1)
        config = CongestConfig().with_log_budget(6)
        with pytest.raises(MessageSizeViolation) as excinfo:
            engine.execute(Network(nx.path_graph(6)), _BigTalker(), config=config)
        assert excinfo.value.bits == 10 ** 6
        assert excinfo.value.budget == config.message_bit_budget
        assert excinfo.value.round_index == 0

    def test_double_send_raises_congestion_violation(self):
        engine = AsyncEngine(pulses=1)
        with pytest.raises(CongestionViolation) as excinfo:
            engine.execute(
                Network(nx.path_graph(4)), _DoubleSender(), config=CongestConfig()
            )
        assert excinfo.value.sender == 0
        assert excinfo.value.receiver == 1
        assert excinfo.value.round_index == 0

    def test_violations_are_congest_errors(self):
        engine = AsyncEngine(pulses=1)
        with pytest.raises(CongestError):
            engine.execute(
                Network(nx.path_graph(4)), _DoubleSender(), config=CongestConfig()
            )

    def test_disabled_checks_allow_the_traffic(self):
        config = CongestConfig(enforce_congestion=False, message_bit_budget=None)
        result = run_protocol(
            Network(nx.path_graph(4), seed=1),
            _DoubleSender(),
            config=config,
            engine="async",
        )
        # Both messages delivered, in send order.
        assert result.outputs[1] == ["a", "b"]
        big = run_protocol(
            Network(nx.path_graph(4), seed=1),
            _BigTalker(),
            config=CongestConfig(message_bit_budget=None),
            engine="async",
        )
        assert big.metrics.max_message_bits == 10 ** 6
