"""Tests for the service layer: deltas, incremental queries, the daemon.

The load-bearing claim is bit-identity: every service answer — full,
incremental or cached — must equal (labels, sample, candidates and
components) a fresh ``DistNearCliqueRunner`` run on a fresh
``Network(final_graph, seed=query_seed)``.  The incremental path earns
its keep only because that equality is exact, so these tests compare
against the fresh oracle everywhere, including under random delta
sequences across engines (the property arm).
"""

from __future__ import annotations

import io
import json
import random

import networkx as nx
import pytest

from repro.congest.config import CongestConfig
from repro.congest.errors import DeltaError, ShardWorkerError
from repro.congest.network import Network
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.core.params import AlgorithmParameters
from repro.service import (
    NearCliqueDaemon,
    NearCliqueService,
    RequestError,
    parse_request,
)
from repro.service.protocol import delta_edges, error_response, result_payload


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def _block_graph(sizes, p=0.9, seed=7) -> nx.Graph:
    """Disjoint dense blocks on contiguous id ranges (multi-component)."""
    rng = random.Random(seed)
    graph = nx.Graph()
    base = 0
    for size in sizes:
        members = list(range(base, base + size))
        graph.add_nodes_from(members)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if rng.random() < p:
                    graph.add_edge(u, v)
        base += size
    return graph


PARAMS = AlgorithmParameters(epsilon=0.3, sample_probability=0.25)


def _fresh(graph: nx.Graph, seed: int, parameters=PARAMS):
    """The oracle: a fresh network, a fresh full run."""
    runner = DistNearCliqueRunner(parameters=parameters)
    return runner.run(network=Network(graph.copy(), seed=seed))


def _assert_identical(result, oracle):
    assert result.labels == oracle.labels
    assert result.sample == oracle.sample
    assert result.candidates == oracle.candidates
    assert result.components == oracle.components
    assert result.aborted == oracle.aborted


# ----------------------------------------------------------------------
# the Network delta API
# ----------------------------------------------------------------------
class TestNetworkDeltaAPI:
    def test_effective_delta_updates_graph_and_ledger(self):
        network = Network(nx.path_graph(6), seed=0)
        record = network.apply_delta(additions=[(0, 5)], removals=[(2, 3)])
        assert record.epoch == 1 == network.delta_epoch
        assert record.added == ((0, 5),)
        assert record.removed == ((2, 3),)
        assert record.touched == frozenset({0, 2, 3, 5})
        assert network.has_edge(0, 5) and not network.has_edge(2, 3)
        assert network.deltas_since(0) == (record,)
        assert network.deltas_since(1) == ()

    def test_noop_entries_are_dropped_without_epoch_bump(self):
        network = Network(nx.path_graph(4), seed=0)
        record = network.apply_delta(additions=[(0, 1)], removals=[(0, 3)])
        assert record.edges_changed == 0
        assert record.touched == frozenset()
        assert network.delta_epoch == 0
        assert network.deltas_since(0) == ()

    def test_validation_precedes_mutation(self):
        network = Network(nx.path_graph(4), seed=0)
        before = network.csr_fingerprint()
        with pytest.raises(DeltaError, match="unknown"):
            network.apply_delta(additions=[(0, 2), (0, 99)])
        with pytest.raises(DeltaError, match="self-loop"):
            network.apply_delta(additions=[(1, 1)])
        with pytest.raises(DeltaError, match="both"):
            network.apply_delta(additions=[(1, 3)], removals=[(3, 1)])
        assert network.csr_fingerprint() == before
        assert network.delta_epoch == 0

    def test_csr_matches_a_freshly_built_network(self):
        graph = _block_graph([8, 8])
        network = Network(graph.copy(), seed=0)
        network.apply_delta(additions=[(0, 9)], removals=[(0, 1)])
        graph.add_edge(0, 9)
        graph.remove_edge(0, 1)
        assert network.csr_fingerprint() == Network(graph).csr_fingerprint()

    def test_live_contexts_patched_in_place(self):
        network = Network(nx.path_graph(5), seed=0)
        contexts = network.build_contexts()
        contexts[2].state["keep"] = "me"
        epoch = network.context_epoch
        network.apply_delta(removals=[(1, 2)])
        assert contexts[2].neighbors == (3,)
        assert contexts[1].neighbors == (0,)
        assert contexts[2].state["keep"] == "me"
        # patched, not rebuilt: sessions detect the change via the
        # fingerprint + ledger, not the context epoch
        assert network.context_epoch == epoch


# ----------------------------------------------------------------------
# the service: full / cached / incremental
# ----------------------------------------------------------------------
class TestServiceQueries:
    def test_full_then_cached_then_incremental(self):
        graph = _block_graph([12, 12, 12])
        service = NearCliqueService(graph.copy(), PARAMS)
        with service:
            first = service.query(seed=3)
            assert first.record.kind == "full"
            _assert_identical(first.result, _fresh(graph, 3))

            again = service.query(seed=3)
            assert again.record.kind == "cached"
            assert again.result is first.result
            assert again.record.recomputed_nodes == 0

            service.apply_delta(removals=[(12, 13)])
            graph.remove_edge(12, 13)
            after = service.query(seed=3)
            assert after.record.kind == "incremental"
            assert after.record.recomputed_nodes == 12
            assert after.record.total_nodes == 36
            _assert_identical(after.result, _fresh(graph, 3))

    def test_new_seed_forces_full_recompute(self):
        graph = _block_graph([10, 10])
        service = NearCliqueService(graph.copy(), PARAMS)
        with service:
            service.query(seed=1)
            outcome = service.query(seed=2)
            assert outcome.record.kind == "full"
            _assert_identical(outcome.result, _fresh(graph, 2))

    def test_component_merging_addition_recomputes_both_blocks(self):
        graph = _block_graph([10, 10, 10])
        service = NearCliqueService(graph.copy(), PARAMS)
        with service:
            service.query(seed=5)
            service.apply_delta(additions=[(0, 10)])
            graph.add_edge(0, 10)
            outcome = service.query(seed=5)
            assert outcome.record.kind == "incremental"
            # the merged component spans blocks 0 and 1; block 2 is clean
            assert outcome.record.recomputed_nodes == 20
            _assert_identical(outcome.result, _fresh(graph, 5))

    def test_component_splitting_removal_covers_both_halves(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(13))
        for i in range(5):
            for j in range(i + 1, 5):
                graph.add_edge(i, j)
        graph.add_edge(4, 5)  # bridge to a second half
        for i in range(5, 9):
            for j in range(i + 1, 9):
                graph.add_edge(i, j)
        for i in range(9, 13):  # clean component
            for j in range(i + 1, 13):
                graph.add_edge(i, j)
        service = NearCliqueService(graph.copy(), PARAMS)
        with service:
            service.query(seed=2)
            service.apply_delta(removals=[(4, 5)])
            graph.remove_edge(4, 5)
            outcome = service.query(seed=2)
            assert outcome.record.kind == "incremental"
            assert outcome.record.recomputed_nodes == 9
            _assert_identical(outcome.result, _fresh(graph, 2))

    def test_aborted_run_is_not_cached(self):
        # probability 1 with a tiny guard: every query realises |S| = n
        # and aborts; a repeat must re-run (full), not serve the abort.
        graph = _block_graph([8])
        tight = AlgorithmParameters(
            epsilon=0.3, sample_probability=1.0, max_sample_size=3
        )
        service = NearCliqueService(graph.copy(), tight)
        with service:
            first = service.query(seed=0)
            assert first.result.aborted
            assert first.record.kind == "full"
            again = service.query(seed=0)
            assert again.record.kind == "full"
            _assert_identical(first.result, _fresh(graph, 0, tight))

    def test_incremental_abort_uses_the_global_bound(self):
        # White-box: tighten the guard between queries so the region
        # re-run trips it.  The spliced abort must carry the *global*
        # bound and the merged sample — exactly what a fresh full run
        # with the tightened parameters reports.
        graph = _block_graph([10, 10], p=1.0)
        loose = AlgorithmParameters(
            epsilon=0.3, sample_probability=0.5, max_sample_size=18
        )
        service = NearCliqueService(graph.copy(), loose)
        with service:
            first = service.query(seed=4)
            assert not first.result.aborted
            kept_outside = len(
                [v for v in first.result.sample if v >= 10]
            )
            tight = AlgorithmParameters(
                epsilon=0.3, sample_probability=0.5, max_sample_size=kept_outside
            )
            service.parameters = tight
            service._runner = DistNearCliqueRunner(
                parameters=tight, config=service.config
            )
            service.apply_delta(removals=[(0, 1)])
            graph.remove_edge(0, 1)
            outcome = service.query(seed=4)
            oracle = _fresh(graph, 4, tight)
            assert oracle.aborted, "oracle should trip the tightened guard"
            assert outcome.result.aborted
            assert outcome.result.abort_reason == oracle.abort_reason
            assert outcome.result.sample == oracle.sample

    def test_delta_with_unknown_label_is_rejected_atomically(self):
        service = NearCliqueService(_block_graph([6]), PARAMS)
        with service:
            with pytest.raises(DeltaError, match="unknown node"):
                service.apply_delta(additions=[(0, 777)])
            assert service.stats.deltas == 0
            assert service.query(seed=0).record.kind == "full"

    def test_stats_counters_accumulate(self):
        graph = _block_graph([8, 8])
        service = NearCliqueService(graph, PARAMS)
        with service:
            service.query(seed=0)
            service.query(seed=0)
            service.apply_delta(removals=[(0, 1)])
            service.query(seed=0)
        stats = service.stats
        assert stats.queries == 3
        assert stats.full_queries == 1
        assert stats.cached_hits == 1
        assert stats.incremental_queries == 1
        assert stats.deltas == 1
        assert stats.nodes_recomputed == 16 + 8

    def test_sharded_record_names_only_dirty_shards(self):
        graph = _block_graph([10, 10, 10])
        config = (
            CongestConfig(engine="sharded", shards=3, shard_backend="serial")
            .with_log_budget(30)
        )
        service = NearCliqueService(graph, PARAMS, config=config)
        with service:
            full = service.query(seed=3)
            assert full.record.dirty_shards == (0, 1, 2)
            service.apply_delta(removals=[(22, 23)])
            outcome = service.query(seed=3)
            assert outcome.record.kind == "incremental"
            assert outcome.record.dirty_shards == (2,)
            assert outcome.record.recomputed_nodes == 10


class TestServicePersistentSession:
    """The service over one persistent process-backend session."""

    def test_session_incremental_query_recomputes_only_dirty_shard(self):
        graph = _block_graph([10, 10, 10])
        config = (
            CongestConfig(
                engine="sharded",
                shards=3,
                shard_backend="process",
                session_mode="persistent",
            )
            .with_log_budget(30)
        )
        service = NearCliqueService(graph.copy(), PARAMS, config=config)
        with service:
            first = service.query(seed=3)
            assert first.record.kind == "full"
            _assert_identical(first.result, _fresh(graph, 3))

            service.apply_delta(removals=[(22, 23)])
            graph.remove_edge(22, 23)
            outcome = service.query(seed=3)
            assert outcome.record.kind == "incremental"
            assert outcome.record.dirty_shards == (2,)
            assert outcome.record.recomputed_nodes == 10
            _assert_identical(outcome.result, _fresh(graph, 3))

            # A reseeded full query goes through the persistent session,
            # which absorbs the pending delta by repairing its plan.
            follow = service.query(seed=8)
            assert follow.record.kind == "full"
            _assert_identical(follow.result, _fresh(graph, 8))
            assert service.session.repairs == 1
            touched, dirty = service.session.last_repair
            assert set(touched) == {22, 23}
            assert dirty == (2,)


# ----------------------------------------------------------------------
# property arm: random delta sequences, every backend, one oracle
# ----------------------------------------------------------------------
def _random_delta(rng: random.Random, graph: nx.Graph, blocks):
    """A valid random delta confined to one block (keeps locality)."""
    base, size = blocks[rng.randrange(len(blocks))]
    members = list(range(base, base + size))
    present = [
        (u, v)
        for i, u in enumerate(members)
        for v in members[i + 1 :]
        if graph.has_edge(u, v)
    ]
    absent = [
        (u, v)
        for i, u in enumerate(members)
        for v in members[i + 1 :]
        if not graph.has_edge(u, v)
    ]
    removals = rng.sample(present, min(2, len(present)))
    additions = rng.sample(absent, min(2, len(absent)))
    return additions, removals


SERVICE_CONFIGS = [
    pytest.param(None, id="batched"),
    pytest.param(
        CongestConfig(engine="sharded", shards=3, shard_backend="serial")
        .with_log_budget(30),
        id="sharded-serial",
    ),
    pytest.param(
        CongestConfig(
            engine="sharded",
            shards=3,
            shard_backend="process",
            session_mode="persistent",
        ).with_log_budget(30),
        id="session-process",
    ),
]


class TestServiceDeltaProperty:
    @pytest.mark.parametrize("config", SERVICE_CONFIGS)
    def test_random_delta_sequence_matches_fresh_runs(self, config):
        blocks = [(0, 10), (10, 10), (20, 10)]
        graph = _block_graph([10, 10, 10], p=0.85, seed=11)
        rng = random.Random(2009)
        service = NearCliqueService(graph.copy(), PARAMS, config=config)
        kinds = []
        with service:
            for step in range(4):
                additions, removals = _random_delta(rng, graph, blocks)
                service.apply_delta(additions, removals)
                graph.add_edges_from(additions)
                graph.remove_edges_from(removals)
                seed = 3 if step < 3 else 9  # same-seed streak, then a reseed
                outcome = service.query(seed=seed)
                kinds.append(outcome.record.kind)
                _assert_identical(outcome.result, _fresh(graph, seed))
        assert "incremental" in kinds, kinds
        assert "full" in kinds, kinds


# ----------------------------------------------------------------------
# the daemon
# ----------------------------------------------------------------------
def _drive(service, requests):
    out = io.StringIO()
    daemon = NearCliqueDaemon(
        service,
        reader=io.StringIO("".join(json.dumps(r) + "\n" for r in requests)),
        writer=out,
    )
    served = daemon.serve_forever()
    return served, [json.loads(line) for line in out.getvalue().splitlines()]


class TestDaemon:
    def test_transcript_query_delta_query_stats_shutdown(self):
        graph = _block_graph([10, 10])
        service = NearCliqueService(graph, PARAMS)
        served, responses = _drive(
            service,
            [
                {"cmd": "query", "seed": 3},
                {"cmd": "delta", "remove": [[0, 1]]},
                {"cmd": "query", "seed": 3},
                {"cmd": "stats"},
                {"cmd": "shutdown"},
            ],
        )
        assert served == 5
        assert [r["ok"] for r in responses] == [True] * 5
        assert responses[0]["query"]["kind"] == "full"
        assert responses[1]["removed"] == 1
        assert responses[2]["query"]["kind"] == "incremental"
        assert responses[2]["query"]["recomputed_nodes"] == 10
        assert responses[3]["queries"] == 2
        assert responses[3]["deltas"] == 1
        # the loop closed the service's session on the way out
        assert service.session is None or service.session.closed

    def test_bad_requests_answer_typed_errors_and_keep_serving(self):
        service = NearCliqueService(_block_graph([8]), PARAMS)
        out = io.StringIO()
        daemon = NearCliqueDaemon(
            service,
            reader=io.StringIO(
                "not json\n"
                '{"cmd": "wat"}\n'
                '[1, 2]\n'
                '{"cmd": "query", "seed": "zero"}\n'
                '{"cmd": "delta", "add": [[1, 1]]}\n'
                '{"cmd": "delta", "add": [[0, 99]]}\n'
                "\n"
                '{"cmd": "query"}\n'
                '{"cmd": "shutdown"}\n'
            ),
            writer=out,
        )
        served = daemon.serve_forever()
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert served == 8  # the blank line is skipped, not answered
        codes = [
            r["error"]["code"] for r in responses if not r["ok"]
        ]
        assert codes == [
            "bad-request",
            "bad-request",
            "bad-request",
            "bad-request",
            "bad-delta",
            "bad-delta",
        ]
        assert responses[-2]["ok"] and responses[-2]["cmd"] == "query"
        assert responses[-1]["cmd"] == "shutdown"

    def test_eof_without_shutdown_still_closes_the_service(self):
        service = NearCliqueService(_block_graph([8]), PARAMS)
        served, responses = _drive(service, [{"cmd": "query"}])
        assert served == 1 and responses[0]["ok"]
        assert service.session is None or service.session.closed

    def test_worker_crash_answers_typed_error_and_daemon_recovers(self):
        # The crash surface is exercised for real at the session layer
        # (test_sharding.py::test_session_worker_crash_is_clean_error);
        # here the first query raises the same typed error from inside
        # the service, and the daemon must answer "worker-crash", drop
        # the session, and serve the retry correctly.
        graph = _block_graph([10, 10])
        service = NearCliqueService(graph.copy(), PARAMS)
        real_run = service._runner.run
        crashes = {"left": 1}

        def crash_once(*args, **kwargs):
            if crashes["left"]:
                crashes["left"] -= 1
                raise ShardWorkerError("shard worker for shard 1 died")
            return real_run(*args, **kwargs)

        service._runner.run = crash_once
        served, responses = _drive(
            service,
            [
                {"cmd": "query", "seed": 3},
                {"cmd": "query", "seed": 3},
                {"cmd": "stats"},
                {"cmd": "shutdown"},
            ],
        )
        assert served == 4
        assert responses[0]["ok"] is False
        assert responses[0]["error"]["code"] == "worker-crash"
        assert responses[1]["ok"] is True
        assert responses[2]["worker_crashes"] == 1
        assert responses[2]["recoveries"] == 1
        # the retry's answer is still the oracle's
        fresh = _fresh(graph, 3)
        sample = sorted(fresh.sample)
        assert responses[1]["sample"] == sample


# ----------------------------------------------------------------------
# wire-protocol units
# ----------------------------------------------------------------------
class TestProtocol:
    def test_parse_validates_commands_and_arguments(self):
        assert parse_request('{"cmd": "stats"}')["cmd"] == "stats"
        request = parse_request('{"cmd": "delta", "add": [[1, 2]]}')
        assert delta_edges(request) == ([(1, 2)], [])
        for bad in (
            "nope",
            "[]",
            '{"cmd": "nope"}',
            '{"cmd": "query", "seed": true}',
            '{"cmd": "delta", "add": [[1]]}',
            '{"cmd": "delta", "add": 7}',
        ):
            with pytest.raises(RequestError):
                parse_request(bad)

    def test_unknown_error_code_degrades_to_internal(self):
        assert error_response("made-up", "x")["error"]["code"] == "internal-error"

    def test_result_payload_is_json_serialisable_and_sorted(self):
        graph = _block_graph([8])
        result = _fresh(graph, 1)
        payload = result_payload(result)
        encoded = json.dumps(payload, sort_keys=True)
        decoded = json.loads(encoded)
        assert decoded["sample"] == sorted(result.sample)
        assert len(decoded["labels"]) == 8
