"""Tests for the command-line interface."""

from __future__ import annotations

import os

import pytest

from repro import cli
from repro.graphs import io


class TestGenerateCommand:
    @pytest.mark.parametrize("family", ["planted", "figure1", "path-of-cliques", "web"])
    def test_generates_every_family(self, tmp_path, family):
        path = os.path.join(str(tmp_path), "%s.edges" % family)
        exit_code = cli.main(
            ["generate", path, "--family", family, "--n", "60", "--seed", "3"]
        )
        assert exit_code == 0
        graph, planted = io.read_edge_list(path)
        assert graph.number_of_nodes() >= 30
        assert planted


class TestFindCommand:
    def test_distributed_engine_on_generated_workload(self, capsys):
        exit_code = cli.main(
            [
                "find",
                "--n",
                "60",
                "--epsilon",
                "0.2",
                "--engine",
                "distributed",
                "--expected-sample",
                "6",
                "--seed",
                "5",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Discovered near-cliques" in captured.out
        assert "max message bits" in captured.out

    def test_centralized_engine_on_saved_graph(self, tmp_path, capsys):
        path = os.path.join(str(tmp_path), "workload.edges")
        cli.main(["generate", path, "--family", "planted", "--n", "50", "--seed", "1"])
        exit_code = cli.main(
            ["find", "--graph", path, "--engine", "centralized", "--epsilon", "0.2", "--seed", "2"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "recall of planted set" in captured.out

    @pytest.mark.parametrize(
        "congest_engine", ["reference", "batched", "async", "sharded"]
    )
    def test_congest_engine_selection(self, capsys, congest_engine):
        exit_code = cli.main(
            [
                "find",
                "--n",
                "60",
                "--epsilon",
                "0.2",
                "--engine",
                "distributed",
                "--congest-engine",
                congest_engine,
                "--expected-sample",
                "6",
                "--seed",
                "5",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Discovered near-cliques" in captured.out

    def test_congest_engines_print_identical_reports(self, capsys):
        reports = {}
        for congest_engine in ("reference", "batched", "async", "sharded"):
            exit_code = cli.main(
                [
                    "find",
                    "--n",
                    "50",
                    "--congest-engine",
                    congest_engine,
                    "--expected-sample",
                    "5",
                    "--seed",
                    "9",
                ]
            )
            assert exit_code == 0
            reports[congest_engine] = capsys.readouterr().out
        assert reports["reference"] == reports["batched"]
        assert reports["sharded"] == reports["batched"]
        # The async report additionally carries the synchronizer-overhead
        # row (which widens the table columns); every value above it —
        # clusters, sample, rounds, messages — is identical to the
        # synchronous engines, per the engine contract.
        def rows(report):
            return [
                " ".join(line.split())
                for line in report.splitlines()
                if line.strip()
                and not set(line) <= {"-", " "}  # column-width separator rows
                and "synchronizer control messages" not in line
            ]

        assert rows(reports["async"]) == rows(reports["reference"])

    @pytest.mark.parametrize("shards,workers", [("1", "0"), ("3", "0"), ("4", "2")])
    def test_sharded_engine_shard_flags(self, capsys, shards, workers):
        # Shard count and worker mode are report-invariant: the sharded
        # engine is bit-identical for every partition, so the CLI output
        # must not change either.
        reports = {}
        for name, extra in (
            ("batched", []),
            ("sharded", ["--shards", shards, "--shard-workers", workers]),
        ):
            exit_code = cli.main(
                [
                    "find",
                    "--n",
                    "50",
                    "--congest-engine",
                    name,
                    "--expected-sample",
                    "5",
                    "--seed",
                    "9",
                ]
                + extra
            )
            assert exit_code == 0
            reports[name] = capsys.readouterr().out
        assert reports["sharded"] == reports["batched"]

    def test_session_mode_process_backend_report(self, capsys):
        # Persistent sessions must not change the finder's report (engines
        # are bit-identical in session mode) and must append the
        # execution-session totals.
        reports = {}
        for name, extra in (
            ("batched", []),
            (
                "session",
                [
                    "--congest-engine",
                    "sharded",
                    "--shards",
                    "2",
                    "--shard-backend",
                    "process",
                    "--session-mode",
                    "persistent",
                ],
            ),
        ):
            exit_code = cli.main(
                ["find", "--n", "50", "--expected-sample", "5", "--seed", "9"]
                + extra
            )
            assert exit_code == 0
            reports[name] = capsys.readouterr().out
        session_report = reports["session"]
        assert "Execution-session report" in session_report
        assert "shm bytes mapped" in session_report
        assert "setup seconds / phase" in session_report
        # Everything before the session report matches the batched run.
        prefix = session_report.split("Execution-session report")[0].rstrip()
        assert prefix == reports["batched"].rstrip()
        assert "Execution-session report" not in reports["batched"]

    def test_boosted_engine(self, capsys):
        exit_code = cli.main(
            [
                "find",
                "--n",
                "50",
                "--engine",
                "boosted",
                "--repetitions",
                "3",
                "--expected-sample",
                "6",
                "--seed",
                "7",
            ]
        )
        assert exit_code == 0
        assert "Run summary" in capsys.readouterr().out

    def test_abort_reported_as_nonzero_exit(self, capsys):
        exit_code = cli.main(
            [
                "find",
                "--n",
                "40",
                "--expected-sample",
                "40",
                "--max-sample",
                "3",
                "--seed",
                "1",
            ]
        )
        assert exit_code == 1
        assert "aborted" in capsys.readouterr().out.lower()


class TestVerifyCommand:
    def test_verify_planted_set_passes(self, tmp_path, capsys):
        path = os.path.join(str(tmp_path), "workload.edges")
        cli.main(
            ["generate", path, "--family", "planted", "--n", "50", "--epsilon", "0.01", "--seed", "2"]
        )
        exit_code = cli.main(["verify", path, "--epsilon", "0.05"])
        assert exit_code == 0
        assert "yes" in capsys.readouterr().out

    def test_verify_explicit_sparse_set_fails(self, tmp_path, capsys):
        path = os.path.join(str(tmp_path), "workload.edges")
        cli.main(["generate", path, "--family", "planted", "--n", "50", "--seed", "2"])
        exit_code = cli.main(
            ["verify", path, "--epsilon", "0.0", "--nodes", "0,1,2,48,49"]
        )
        assert exit_code == 1

    def test_verify_without_nodes_or_planted_errors(self, tmp_path):
        import networkx as nx

        path = os.path.join(str(tmp_path), "plain.edges")
        io.write_edge_list(nx.path_graph(4), path)
        assert cli.main(["verify", path, "--epsilon", "0.1"]) == 2


class TestServeCommand:
    def _serve(self, monkeypatch, capsys, requests, argv=()):
        import io as _io
        import json
        import sys

        lines = "".join(json.dumps(r) + "\n" for r in requests)
        monkeypatch.setattr(sys, "stdin", _io.StringIO(lines))
        exit_code = cli.main(["serve", "--n", "48", "--seed", "1", *argv])
        captured = capsys.readouterr()
        responses = [json.loads(line) for line in captured.out.splitlines()]
        return exit_code, responses, captured.err

    def test_serve_answers_query_delta_query_and_shuts_down(
        self, monkeypatch, capsys
    ):
        exit_code, responses, err = self._serve(
            monkeypatch,
            capsys,
            [
                {"cmd": "query", "seed": 3},
                {"cmd": "delta", "remove": [[0, 1]]},
                {"cmd": "query", "seed": 3},
                {"cmd": "stats"},
                {"cmd": "shutdown"},
            ],
        )
        assert exit_code == 0
        assert [r["ok"] for r in responses] == [True] * 5
        assert responses[0]["query"]["kind"] == "full"
        assert responses[2]["query"]["kind"] == "incremental"
        assert responses[3]["deltas"] == 1
        assert "serving near-clique queries" in err
        assert "served 5 requests" in err

    def test_serve_survives_bad_requests_and_eof(self, monkeypatch, capsys):
        import io as _io
        import sys

        monkeypatch.setattr(
            sys, "stdin", _io.StringIO('garbage\n{"cmd": "stats"}\n')
        )
        exit_code = cli.main(["serve", "--n", "32", "--seed", "1"])
        captured = capsys.readouterr()
        import json

        responses = [json.loads(line) for line in captured.out.splitlines()]
        assert exit_code == 0
        assert responses[0]["error"]["code"] == "bad-request"
        assert responses[1]["ok"] is True
