"""Tests for the sharding subsystem: partitioner, plan invariants, engine knobs.

The differential suite (``tests/test_engine_equivalence.py``) already holds
``engine="sharded"`` to the bit-identical contract across protocols, shard
counts and strategies; this module covers the partitioner itself — plan
invariants on awkward graphs (disconnected, k > n, mixed labels),
determinism under a fixed seed, cut statistics — and the engine's
configuration surface (single shard degenerating to batched, thread mode,
traffic statistics).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import random
import subprocess
import sys
import threading
import time

import networkx as nx
import pytest

from repro.congest.config import CongestConfig
from repro.congest.engine import CongestSession, get_engine
from repro.congest.errors import (
    CongestionViolation,
    MessageSizeViolation,
    ProtocolError,
    RoundLimitExceeded,
    ShardWorkerError,
)
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Protocol
from repro.congest.scheduler import run_protocol
from repro.congest.sharding import (
    PARTITION_STRATEGIES,
    SHARD_BACKENDS,
    SharedCSR,
    ShardPlan,
    ShardedEngine,
    ShardingStats,
    cached_partition,
    invalidate_partition_cache,
    partition_network,
    repair_plan,
    shard_fingerprints,
)
from repro.primitives.bfs_tree import KEY_PARTICIPANT, MinIdBFSTreeProtocol


def _check_plan_invariants(plan: ShardPlan, network: Network) -> None:
    """The structural promises every plan makes, regardless of strategy."""
    n = network.n
    assert plan.n == n
    assert len(plan.shards) == plan.n_shards
    # Every node owned exactly once, shard lists ascending and consistent
    # with the owner array.
    seen = []
    for shard_index, owned in enumerate(plan.shards):
        assert list(owned) == sorted(owned)
        for dense in owned:
            assert plan.owner[dense] == shard_index
        seen.extend(owned)
    assert sorted(seen) == list(range(n))
    # The cut partitions the edge set.
    assert plan.cut_edges + plan.internal_edges == network.number_of_edges()
    assert plan.total_edges == network.number_of_edges()
    for u, v in plan.boundary_edges:
        assert u < v
        assert plan.owner[u] != plan.owner[v]
    if plan.total_edges:
        assert 0.0 <= plan.cut_fraction <= 1.0
    else:
        assert plan.cut_fraction == 0.0


@pytest.fixture(params=PARTITION_STRATEGIES)
def strategy(request):
    return request.param


class TestPartitioner:
    def test_invariants_on_random_graph(self, strategy):
        network = Network(nx.gnp_random_graph(40, 0.15, seed=2), seed=1)
        for k in (1, 2, 3, 7):
            plan = partition_network(network, k, strategy=strategy, seed=5)
            _check_plan_invariants(plan, network)

    def test_disconnected_graph_fully_assigned(self, strategy):
        # Three components plus isolated nodes: every node must land in a
        # shard even when no BFS seed reaches its component.
        graph = nx.Graph()
        graph.add_edges_from(nx.path_graph(6).edges())
        graph.add_edges_from((10 + u, 10 + v) for u, v in nx.cycle_graph(5).edges())
        graph.add_edges_from([(20, 21), (21, 22)])
        graph.add_nodes_from([30, 31, 32])
        network = Network(graph, seed=0)
        plan = partition_network(network, 3, strategy=strategy, seed=4)
        _check_plan_invariants(plan, network)

    def test_more_shards_than_nodes(self, strategy):
        network = Network(nx.path_graph(3), seed=0)
        plan = partition_network(network, 8, strategy=strategy, seed=1)
        _check_plan_invariants(plan, network)
        assert plan.n_shards == 8
        # Exactly n shards are non-empty; the surplus shards are empty.
        assert sum(1 for owned in plan.shards if owned) == 3

    def test_mixed_label_network(self, strategy):
        # Mixed int/str labels exercise the deterministic relabelling; the
        # partitioner only ever sees the dense CSR index.
        graph = nx.Graph([("a", 3), (3, "b"), ("b", 7), (7, "a"), ("c", 3)])
        network = Network(graph, seed=9)
        plan = partition_network(network, 2, strategy=strategy, seed=2)
        _check_plan_invariants(plan, network)

    def test_deterministic_under_fixed_seed(self, strategy):
        graph = nx.gnp_random_graph(36, 0.2, seed=6)
        for seed in (0, 1, 17):
            plans = [
                partition_network(Network(graph, seed=3), 4, strategy=strategy, seed=seed)
                for _ in range(2)
            ]
            assert plans[0] == plans[1]

    def test_bfs_seed_moves_the_plan(self):
        # Not a hard guarantee on every graph, but on a sparse random graph
        # two far-apart seed draws should place regions differently.
        network = Network(nx.gnp_random_graph(60, 0.08, seed=3), seed=0)
        plans = {
            partition_network(network, 4, strategy="bfs", seed=seed).owner
            for seed in range(6)
        }
        assert len(plans) > 1

    def test_contiguous_blocks_are_contiguous_and_balanced(self):
        network = Network(nx.path_graph(10), seed=0)
        plan = partition_network(network, 3)
        assert plan.shards == ((0, 1, 2, 3), (4, 5, 6), (7, 8, 9))
        # A path cut into 3 blocks crosses exactly 2 edges.
        assert plan.cut_edges == 2

    def test_balanced_sizes(self, strategy):
        network = Network(nx.gnp_random_graph(41, 0.2, seed=8), seed=0)
        plan = partition_network(network, 4, strategy=strategy, seed=0)
        sizes = plan.shard_sizes
        assert sum(sizes) == 41
        assert max(sizes) - min(sizes) <= 11  # ceil(n/k) capacity bound

    def test_rejects_bad_inputs(self):
        network = Network(nx.path_graph(4), seed=0)
        with pytest.raises(ValueError, match="at least 1"):
            partition_network(network, 0)
        with pytest.raises(ValueError, match="unknown partition strategy"):
            partition_network(network, 2, strategy="metis")

    def test_describe_mentions_cut(self):
        network = Network(nx.cycle_graph(8), seed=0)
        text = partition_network(network, 2).describe()
        assert "cut" in text and "contiguous" in text


class TestRefinedPartitioner:
    """The FM-style boundary-refinement sweep behind ``"bfs+refine"``."""

    def _shuffled_gnp(self, n=200, p=0.05, seed=5):
        # Relabel randomly so node ids carry no locality — the workload the
        # refinement sweep exists for (real edge lists).
        graph = nx.gnp_random_graph(n, p, seed=seed)
        permutation = list(graph.nodes())
        random.Random(seed).shuffle(permutation)
        return nx.relabel_nodes(
            graph, dict(zip(graph.nodes(), permutation))
        )

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_never_cuts_more_than_bfs(self, k):
        network = Network(self._shuffled_gnp(), seed=0)
        bfs = partition_network(network, k, strategy="bfs", seed=3)
        refined = partition_network(network, k, strategy="bfs+refine", seed=3)
        assert refined.cut_edges <= bfs.cut_edges

    def test_reduces_cut_on_locality_free_ids(self):
        # Not a theorem on every graph, but on a shuffled G(n, p) the sweep
        # must find strictly positive-gain moves.
        network = Network(self._shuffled_gnp(), seed=0)
        bfs = partition_network(network, 4, strategy="bfs", seed=3)
        refined = partition_network(network, 4, strategy="bfs+refine", seed=3)
        assert refined.cut_edges < bfs.cut_edges

    def test_refined_plan_respects_balance_tolerance(self):
        network = Network(self._shuffled_gnp(n=101), seed=0)
        plan = partition_network(network, 4, strategy="bfs+refine", seed=1)
        base_capacity = -(-101 // 4)  # ceil
        assert max(plan.shard_sizes) <= base_capacity + max(1, base_capacity // 20)
        assert min(plan.shard_sizes) >= 1

    def test_refine_deterministic(self):
        graph = self._shuffled_gnp(n=120)
        plans = [
            partition_network(Network(graph, seed=2), 4, strategy="bfs+refine", seed=9)
            for _ in range(2)
        ]
        assert plans[0] == plans[1]


class _PingAll(Protocol):
    """One broadcast round, then halt — tiny deterministic traffic source."""

    name = "ping-all"
    quiesce_terminates = True

    def on_start(self, ctx):
        ctx.send_all(Message(kind="ping", payload=(ctx.node_id,)))

    def on_round(self, ctx, inbox):
        ctx.write_output(len(inbox))
        ctx.halt()


class TestShardedEngineKnobs:
    def _fingerprint(self, result):
        m = result.metrics
        return (result.outputs, m.rounds, m.total_messages, m.total_bits)

    def test_single_shard_matches_batched(self):
        # k=1 routes nothing across a boundary: the run must degenerate to
        # the batched engine's semantics exactly.
        graph = nx.gnp_random_graph(24, 0.2, seed=4)
        per_node = {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}
        results = {}
        for name, config in (
            ("batched", CongestConfig(engine="batched")),
            ("sharded", CongestConfig().with_sharding(shards=1)),
        ):
            network = Network(graph, seed=11)
            results[name] = run_protocol(
                network,
                MinIdBFSTreeProtocol(),
                config=config.with_log_budget(24),
                per_node_inputs=per_node,
            )
        assert self._fingerprint(results["sharded"]) == self._fingerprint(
            results["batched"]
        )

    def test_engine_instance_overrides_config(self):
        engine = ShardedEngine(shards=2, strategy="bfs", partition_seed=7)
        network = Network(nx.cycle_graph(10), seed=1)
        result = run_protocol(
            network,
            _PingAll(),
            config=CongestConfig(shards=64),  # overridden by the instance
            engine=engine,
        )
        assert result.outputs == {v: 2 for v in range(10)}

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            ShardedEngine(shards=0)

    def test_stats_collection_counts_cross_shard_traffic(self):
        # On a cycle cut into two contiguous arcs, exactly the messages on
        # the two cut edges (both directions) cross shards.
        engine = ShardedEngine(shards=2, collect_stats=True)
        network = Network(nx.cycle_graph(10), seed=1)
        result = run_protocol(network, _PingAll(), config=CongestConfig(), engine=engine)
        stats = engine.stats
        assert stats is not None
        assert stats.runs == 1
        assert stats.protocol_messages == result.metrics.total_messages == 20
        assert stats.cross_shard_messages == 4  # 2 cut edges x 2 directions
        assert stats.cross_shard_fraction == pytest.approx(0.2)
        assert stats.plans[0].cut_edges == 2

    def test_registry_instance_collects_no_stats(self):
        from repro.congest.engine import get_engine

        assert get_engine("sharded").stats is None

    @pytest.mark.parametrize("workers", [0, 1, 2, 4])
    def test_worker_counts_all_agree(self, workers):
        graph = nx.gnp_random_graph(30, 0.2, seed=12)
        per_node = {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}
        network = Network(graph, seed=2)
        config = CongestConfig().with_sharding(shards=3, workers=workers)
        result = run_protocol(
            network,
            MinIdBFSTreeProtocol(),
            config=config.with_log_budget(30),
            per_node_inputs=per_node,
        )
        serial_network = Network(graph, seed=2)
        serial = run_protocol(
            serial_network,
            MinIdBFSTreeProtocol(),
            config=CongestConfig().with_sharding(shards=3, workers=0).with_log_budget(30),
            per_node_inputs=per_node,
        )
        assert self._fingerprint(result) == self._fingerprint(serial)

    def test_empty_network(self, strategy):
        network = Network(nx.Graph(), seed=0)
        result = run_protocol(
            network,
            _PingAll(),
            config=CongestConfig().with_sharding(shards=4, strategy=strategy),
        )
        assert result.outputs == {}
        assert result.metrics.rounds == 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown shard backend"):
            ShardedEngine(backend="gpu")
        network = Network(nx.path_graph(4), seed=0)
        with pytest.raises(ValueError, match="unknown shard backend"):
            run_protocol(
                network,
                _PingAll(),
                config=CongestConfig().with_sharding(backend="gpu"),
            )

    def test_serial_backend_forces_serial_despite_workers(self):
        # backend="serial" must never build a pool even with workers >= 2.
        engine = ShardedEngine(shards=3, workers=4, backend="serial")
        network = Network(nx.cycle_graph(12), seed=1)
        before = {t.name for t in threading.enumerate()}
        result = run_protocol(network, _PingAll(), engine=engine)
        after = {t.name for t in threading.enumerate()} - before
        assert not any(name.startswith("repro-shard") for name in after)
        assert result.outputs == {v: 2 for v in range(12)}

    def test_pool_dispatch_path_is_exercised(self, monkeypatch):
        # POOL_MIN_WORK keeps unit-sized rounds off the pool, so pin it to
        # zero here: every round must go through the chunked pool dispatch
        # and still be bit-identical to the serial mode.
        from repro.congest.sharding.engine import _ShardedRun

        monkeypatch.setattr(_ShardedRun, "POOL_MIN_WORK", 0)
        dispatches = {"pool": 0}
        original = _ShardedRun._run_shards

        def counting(self, step, work_hint):
            if self.pool is not None and work_hint >= self.POOL_MIN_WORK:
                dispatches["pool"] += 1
            return original(self, step, work_hint)

        monkeypatch.setattr(_ShardedRun, "_run_shards", counting)

        graph = nx.gnp_random_graph(30, 0.2, seed=12)
        per_node = {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}
        results = {}
        for workers in (0, 3):
            network = Network(graph, seed=2)
            result = run_protocol(
                network,
                MinIdBFSTreeProtocol(),
                config=CongestConfig()
                .with_sharding(shards=3, workers=workers)
                .with_log_budget(30),
                per_node_inputs=per_node,
            )
            results[workers] = self._fingerprint(result)
        assert dispatches["pool"] > 0, "thread mode never reached the pool"
        assert results[3] == results[0]


class _CrashInWorker(Protocol):
    """Hard-kills the process executing the victim node's second round.

    ``os._exit`` bypasses every ``finally`` and pipe flush — the worker
    disappears exactly as a segfault would, which is the failure mode the
    coordinator must turn into a clean error instead of a hung barrier.
    """

    name = "crash-in-worker"
    quiesce_terminates = True

    def __init__(self, victim: int) -> None:
        self.victim = victim

    def on_start(self, ctx):
        ctx.send_all(Message(kind="ping", payload=(ctx.node_id,)))

    def on_round(self, ctx, inbox):
        if ctx.node_id == self.victim:
            os._exit(3)
        ctx.send_all(Message(kind="ping", payload=(ctx.node_id,)))


class _OutputIsPid(Protocol):
    """Records the executing pid per node — proves real multi-processing."""

    name = "output-is-pid"
    quiesce_terminates = True

    def on_start(self, ctx):
        ctx.send_all(Message(kind="ping"))

    def on_round(self, ctx, inbox):
        ctx.write_output(os.getpid())
        ctx.halt()


class _DoubleSend(Protocol):
    """Violates the one-message-per-edge rule inside a worker process."""

    name = "double-send"

    def on_start(self, ctx):
        for neighbor in ctx.neighbors[:1]:
            ctx.send(neighbor, Message(kind="a"))
            ctx.send(neighbor, Message(kind="b"))


class _ChatterForever(Protocol):
    """Never terminates — trips the coordinator's round cap."""

    name = "chatter"

    def on_start(self, ctx):
        ctx.send_all(Message(kind="ping"))

    def on_round(self, ctx, inbox):
        ctx.send_all(Message(kind="ping"))


def _assert_no_worker_processes():
    """The per-execute pool contract: nothing outlives the call."""
    deadline = time.time() + 5.0
    while multiprocessing.active_children() and time.time() < deadline:
        time.sleep(0.05)  # join() already ran; only reaping can lag
    assert multiprocessing.active_children() == []


class TestProcessBackendInfrastructure:
    """Worker lifecycle, crash handling and stats of the process backend.

    Bit-identity of process-backend *results* lives in the differential
    suite (``tests/test_engine_equivalence.py::TestProcessBackend``); this
    class covers the machinery around it: pools must die with the execute
    call, a crashed worker must surface as a clean error, and the traffic
    stats must account the packed boundary bytes.
    """

    def _config(self, shards=3):
        return CongestConfig().with_sharding(shards=shards, backend="process")

    def test_nodes_really_run_in_worker_processes(self):
        network = Network(nx.cycle_graph(12), seed=0)
        result = run_protocol(network, _OutputIsPid(), config=self._config(shards=3))
        pids = set(result.outputs.values())
        assert os.getpid() not in pids, "protocol callbacks ran in the parent"
        assert len(pids) == 3, "expected one worker process per shard"
        _assert_no_worker_processes()

    def test_worker_crash_is_clean_error_not_hang(self):
        network = Network(nx.cycle_graph(12), seed=0)
        started = time.time()
        with pytest.raises(ShardWorkerError, match="died without reporting"):
            run_protocol(
                network, _CrashInWorker(victim=7), config=self._config(shards=3)
            )
        assert time.time() - started < 30.0
        _assert_no_worker_processes()

    def test_unpicklable_protocol_fails_with_shipping_error(self):
        class LocalProtocol(_PingAll):  # locally defined: cannot pickle
            pass

        network = Network(nx.cycle_graph(9), seed=0)
        with pytest.raises(ShardWorkerError, match="must be picklable"):
            run_protocol(network, LocalProtocol(), config=self._config(shards=3))
        _assert_no_worker_processes()

    def test_no_leaked_processes_after_success_and_violations(self):
        # The registry engine is a shared singleton; pools must be created
        # per execute and torn down on *every* exit path.
        network = Network(nx.cycle_graph(12), seed=0)
        run_protocol(network, _PingAll(), config=self._config())
        _assert_no_worker_processes()
        with pytest.raises(CongestionViolation):
            run_protocol(
                Network(nx.cycle_graph(12), seed=0),
                _DoubleSend(),
                config=self._config(),
            )
        _assert_no_worker_processes()
        with pytest.raises(MessageSizeViolation):
            run_protocol(
                Network(nx.cycle_graph(12), seed=0),
                _PingAll(),
                config=dataclasses.replace(
                    self._config(), message_bit_budget=8
                ),
            )
        _assert_no_worker_processes()

    def test_round_limit_exceeded_crosses_cleanly(self):
        network = Network(nx.cycle_graph(10), seed=0)
        with pytest.raises(RoundLimitExceeded):
            run_protocol(
                network,
                _ChatterForever(),
                config=self._config().with_max_rounds(4),
            )
        _assert_no_worker_processes()

    def test_violation_types_pickle_roundtrip(self):
        # The process boundary ships these via pickle; the default
        # exception reduction would crash on their structured __init__.
        for exc in (
            CongestionViolation(3, 4, 7),
            MessageSizeViolation(1, 2, 99, 32, 5),
            RoundLimitExceeded(12),
        ):
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert str(clone) == str(exc)
            assert clone.__dict__ == exc.__dict__

    def test_stats_report_boundary_bytes_for_process_only(self):
        results = {}
        for backend in ("serial", "process"):
            engine = ShardedEngine(shards=2, backend=backend, collect_stats=True)
            network = Network(nx.cycle_graph(10), seed=1)
            result = run_protocol(network, _PingAll(), engine=engine)
            stats = engine.stats
            results[backend] = (result, stats)
            # Cross-shard accounting is backend-independent: 2 cut edges of
            # the two-arc cycle partition, both directions.
            assert stats.protocol_messages == result.metrics.total_messages == 20
            assert stats.cross_shard_messages == 4
        serial_stats = results["serial"][1]
        process_stats = results["process"][1]
        assert serial_stats.boundary_bytes == 0
        assert serial_stats.bytes_per_round == 0.0
        assert process_stats.boundary_bytes > 0
        assert process_stats.barrier_rounds > 0
        assert process_stats.bytes_per_round > 0.0
        _assert_no_worker_processes()

    def test_single_nonempty_shard_process_degenerates_to_fast_path(self):
        # One shard == the whole network in one worker; must equal the
        # in-process fast path exactly.  (Keep engine keywords of OTHER
        # backends out of this test's name: CI's matrix selects by -k.)
        graph = nx.gnp_random_graph(18, 0.3, seed=2)
        per_node = {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}
        fingerprints = {}
        for name, config in (
            ("fast-path", CongestConfig(engine="batched")),
            ("process", self._config(shards=1)),
        ):
            network = Network(graph, seed=5)
            result = run_protocol(
                network,
                MinIdBFSTreeProtocol(),
                config=config.with_log_budget(18),
                per_node_inputs=per_node,
            )
            m = result.metrics
            fingerprints[name] = (
                result.outputs, m.rounds, m.total_messages, m.total_bits
            )
        assert fingerprints["process"] == fingerprints["fast-path"]
        _assert_no_worker_processes()

    def test_empty_network_process_backend(self):
        network = Network(nx.Graph(), seed=0)
        result = run_protocol(network, _PingAll(), config=self._config())
        assert result.outputs == {}
        assert result.metrics.rounds == 0
        _assert_no_worker_processes()


class TestPartitionCacheStaleness:
    """``cached_partition`` keyed by (network identity, CSR fingerprint)."""

    def test_memo_hit_on_unchanged_network(self):
        network = Network(nx.cycle_graph(10), seed=0)
        first = cached_partition(network, 2)
        assert cached_partition(network, 2) is first

    def test_mutated_network_is_not_served_the_stale_plan(self):
        # Regression: Network.graph exposes the live underlying graph; a
        # caller mutating it used to keep receiving plans memoised for the
        # pre-mutation topology forever.  The fingerprint key must turn
        # that into a recompute.
        network = Network(nx.cycle_graph(10), seed=0)
        stale = cached_partition(network, 2)
        network.graph.add_edge(0, 5)
        fresh = cached_partition(network, 2)
        assert fresh is not stale
        # ... and the new entry is served consistently afterwards.
        assert cached_partition(network, 2) is fresh

    def test_fingerprint_tracks_graph_counts(self):
        network = Network(nx.path_graph(6), seed=0)
        before = network.csr_fingerprint()
        assert network.csr_fingerprint() == before
        network.graph.add_edge(0, 4)
        assert network.csr_fingerprint() != before

    def test_count_preserving_mutation_is_detected(self):
        # An edge swapped for another keeps node and edge counts; the
        # degree digest must still move, or cached_partition would keep
        # serving the stale plan and sessions would keep running on it.
        network = Network(nx.cycle_graph(10), seed=0)
        before = network.csr_fingerprint()
        stale = cached_partition(network, 2)
        network.graph.remove_edge(0, 1)
        network.graph.add_edge(0, 5)
        assert network.graph.number_of_edges() == 10  # counts preserved
        assert network.csr_fingerprint() != before
        assert cached_partition(network, 2) is not stale

    def test_session_count_preserving_mutation_raises(self):
        network = Network(nx.cycle_graph(12), seed=0)
        session, _config = _open_process_session(network)
        with session:
            session.execute(_PingAll())
            network.graph.remove_edge(0, 1)
            network.graph.add_edge(0, 6)
            with pytest.raises(ProtocolError, match="mutated"):
                session.execute(_PingAll(), reuse_contexts=True)
        _assert_no_worker_processes()

    def test_invalidate_drops_the_memo(self):
        network = Network(nx.cycle_graph(8), seed=0)
        first = cached_partition(network, 2)
        invalidate_partition_cache(network)
        assert cached_partition(network, 2) is not first


#: Preamble of the shm-lifecycle subprocess tests: opens a persistent
#: process session, runs one phase, and prints the segment name; each test
#: appends its own exit behaviour.
_SESSION_SCRIPT_PREAMBLE = r"""
import os
import networkx as nx
from repro.congest.config import CongestConfig
from repro.congest.engine import get_engine
from repro.congest.network import Network
from repro.congest.message import Message
from repro.congest.node import Protocol

class Ping(Protocol):
    name = "ping"
    quiesce_terminates = True
    def on_start(self, ctx):
        ctx.send_all(Message(kind="ping"))
    def on_round(self, ctx, inbox):
        ctx.halt()

network = Network(nx.cycle_graph(9), seed=0)
config = CongestConfig(session_mode="persistent").with_sharding(
    shards=3, backend="process"
)
session = get_engine("sharded").open_session(network, config)
session.execute(Ping())
print(session.shared_csr.name, flush=True)
"""


def _run_session_subprocess(tail: str) -> "subprocess.CompletedProcess":
    """Run the session preamble plus *tail* in a fresh interpreter."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in ("src", env.get("PYTHONPATH")) if part
    )
    return subprocess.run(
        [sys.executable, "-c", _SESSION_SCRIPT_PREAMBLE + tail],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )


def _persistent_config(shards=3, **fields):
    return CongestConfig(session_mode="persistent", **fields).with_sharding(
        shards=shards, backend="process"
    )


def _open_process_session(network, shards=3, **fields):
    config = _persistent_config(shards=shards, **fields)
    return get_engine("sharded").open_session(network, config), config


class TestExecutionSessions:
    """Persistent process sessions: pool reuse, re-arm, teardown, shm.

    Bit-identity of session-mode *results* lives in the differential
    suite (``tests/test_engine_equivalence.py::TestSessionMode``); this
    class covers the machinery: the pool must survive ``reuse_contexts``
    executes and die with the session (or earlier, on errors), and the
    shared-memory segment must be unlinked on every exit path, including
    abnormal ones.  Test names carry ``session`` so CI's session job
    selects them alongside the differential arm.
    """

    def test_session_pool_survives_reuse_executes(self):
        network = Network(nx.cycle_graph(12), seed=0)
        session, _config = _open_process_session(network)
        with session:
            first = set(session.execute(_OutputIsPid()).outputs.values())
            second = set(
                session.execute(
                    _OutputIsPid(), reuse_contexts=True
                ).outputs.values()
            )
            assert os.getpid() not in first
            assert len(first) == 3
            assert first == second, "pool did not survive the execute boundary"
        _assert_no_worker_processes()

    def test_session_respawns_on_fresh_contexts(self):
        network = Network(nx.cycle_graph(12), seed=0)
        session, _config = _open_process_session(network)
        with session:
            first = set(session.execute(_OutputIsPid()).outputs.values())
            # reuse_contexts=False rebuilds contexts -> worker state would
            # be stale -> the session must respawn, not re-arm.
            second = set(session.execute(_OutputIsPid()).outputs.values())
            assert first.isdisjoint(second)
        _assert_no_worker_processes()

    def test_session_respawns_on_external_context_build(self):
        network = Network(nx.cycle_graph(12), seed=0)
        session, _config = _open_process_session(network)
        with session:
            first = set(session.execute(_OutputIsPid()).outputs.values())
            # A context build *outside* the session bumps the epoch; the
            # next reuse execute must respawn instead of trusting stale
            # worker state.
            network.build_contexts(fresh=False)
            second = set(
                session.execute(
                    _OutputIsPid(), reuse_contexts=True
                ).outputs.values()
            )
            assert first.isdisjoint(second)
        _assert_no_worker_processes()

    def test_session_respawns_after_failed_external_build(self):
        # A build_contexts call that raises mid-way may already have reset
        # contexts or applied some per-node updates; the epoch must record
        # the attempt so the session respawns instead of light re-arming
        # on divergent worker state.
        network = Network(nx.cycle_graph(12), seed=0)
        session, _config = _open_process_session(network)
        with session:
            first = set(session.execute(_OutputIsPid()).outputs.values())
            with pytest.raises(ProtocolError, match="unknown node id"):
                network.build_contexts(
                    per_node_inputs={0: {"x": 1}, 999: {"x": 1}}, fresh=False
                )
            second = set(
                session.execute(
                    _OutputIsPid(), reuse_contexts=True
                ).outputs.values()
            )
            assert first.isdisjoint(second)
        _assert_no_worker_processes()

    def test_session_teardown_after_context_exit(self):
        network = Network(nx.cycle_graph(12), seed=0)
        session, _config = _open_process_session(network)
        with session:
            session.execute(_PingAll())
            shm_name = session.shared_csr.name
            assert SharedCSR.attach(shm_name).n == 12  # linked while open
        _assert_no_worker_processes()
        with pytest.raises(FileNotFoundError):
            SharedCSR.attach(shm_name)
        # close is idempotent
        session.close()
        with pytest.raises(ProtocolError, match="closed"):
            session.execute(_PingAll())

    def test_session_pre_run_error_tears_pool_down(self):
        # The fail-fast teardown covers errors raised *before* the round
        # loop too (bad per-node inputs, rejected configs), not just model
        # violations and worker deaths.
        network = Network(nx.cycle_graph(12), seed=0)
        session, _config = _open_process_session(network)
        with session:
            session.execute(_PingAll())
            with pytest.raises(ProtocolError, match="unknown node id"):
                session.execute(
                    _PingAll(),
                    reuse_contexts=True,
                    per_node_inputs={999: {"x": 1}},
                )
            _assert_no_worker_processes()
            result = session.execute(_PingAll())  # respawns and recovers
            assert result.outputs == {v: 2 for v in range(12)}
        _assert_no_worker_processes()

    def test_session_violation_tears_pool_down_then_recovers(self):
        network = Network(nx.cycle_graph(12), seed=0)
        session, _config = _open_process_session(network)
        with session:
            with pytest.raises(CongestionViolation):
                session.execute(_DoubleSend())
            # Fail-fast teardown: no waiting for the context exit.
            _assert_no_worker_processes()
            # The session remains usable: the next execute respawns.
            result = session.execute(_PingAll())
            assert result.outputs == {v: 2 for v in range(12)}
        _assert_no_worker_processes()

    def test_session_worker_crash_is_clean_error(self):
        network = Network(nx.cycle_graph(12), seed=0)
        session, _config = _open_process_session(network)
        started = time.time()
        with session:
            with pytest.raises(ShardWorkerError, match="died"):
                session.execute(_CrashInWorker(victim=7))
            _assert_no_worker_processes()
        assert time.time() - started < 30.0
        _assert_no_worker_processes()

    def test_session_shm_unlinked_on_abnormal_exit(self):
        # A creator killed with os._exit skips every finally/atexit; the
        # segment must still disappear (the resource tracker's job).
        proc = _run_session_subprocess("os._exit(1)\n")
        shm_name = proc.stdout.strip().splitlines()[-1]
        assert shm_name, "creator did not report its segment: %s" % proc.stderr
        deadline = time.time() + 15.0
        while time.time() < deadline:
            try:
                SharedCSR.attach(shm_name)
            except FileNotFoundError:
                break
            time.sleep(0.1)
        else:
            pytest.fail(
                "segment %s survived the creator's abnormal exit" % shm_name
            )

    def test_session_shm_unlinked_when_abandoned_without_close(self):
        # A session abandoned without close() on a *normal* interpreter
        # exit is the atexit hook's job: the segment must be unlinked by
        # the hook itself (views released first), not rescued by the
        # resource tracker's leak warning.
        proc = _run_session_subprocess(
            "# no session.close(): exit normally, atexit cleans up\n"
        )
        assert proc.returncode == 0, proc.stderr
        shm_name = proc.stdout.strip().splitlines()[-1]
        assert "leaked shared_memory" not in proc.stderr, (
            "segment fell through to the resource tracker: %s" % proc.stderr
        )
        with pytest.raises(FileNotFoundError):
            SharedCSR.attach(shm_name)

    def test_session_network_mutation_raises_and_invalidates(self):
        network = Network(nx.cycle_graph(12), seed=0)
        stale_plan = cached_partition(network, 3)
        session, _config = _open_process_session(network)
        with session:
            session.execute(_PingAll())
            network.graph.add_edge(0, 6)
            with pytest.raises(ProtocolError, match="mutated"):
                session.execute(_PingAll(), reuse_contexts=True)
            _assert_no_worker_processes()
        # The memo was invalidated: nobody can be served the stale plan.
        assert cached_partition(network, 3) is not stale_plan
        _assert_no_worker_processes()

    def test_session_structural_override_rejected(self):
        network = Network(nx.cycle_graph(12), seed=0)
        session, config = _open_process_session(network, shards=3)
        with session:
            conflicting = dataclasses.replace(config, shards=2)
            with pytest.raises(ValueError, match="fixed for a session"):
                session.execute(_PingAll(), config=conflicting)
        _assert_no_worker_processes()

    def test_session_stats_phase_partials_and_totals(self):
        network = Network(nx.cycle_graph(12), seed=0)
        session, _config = _open_process_session(network, shards=2)
        with session:
            session.execute(_PingAll())
            session.execute(_PingAll(), reuse_contexts=True)
            stats = session.stats
        assert [phase.label for phase in stats.phases] == ["ping-all", "ping-all"]
        assert stats.runs == 2
        assert stats.protocol_messages == sum(
            phase.protocol_messages for phase in stats.phases
        ) == 48
        assert stats.cross_shard_messages == 8  # 2 cut edges x 2 dirs x 2 runs
        assert stats.boundary_bytes > 0
        assert stats.barrier_rounds == sum(
            phase.barrier_rounds for phase in stats.phases
        ) > 0
        assert stats.setup_seconds == pytest.approx(
            sum(phase.setup_seconds for phase in stats.phases)
        )
        assert stats.setup_seconds_per_phase > 0.0
        assert stats.shm_bytes > 0
        _assert_no_worker_processes()

    def test_session_overlapping_pools_close_fast(self):
        # Regression: a pool forked while another pool is alive must not
        # inherit (and keep open) that pool's coordinator pipe ends —
        # otherwise closing the first pool can't EOF its workers and the
        # reap burns the 5 s join timeout per worker before terminating
        # healthy processes.
        network_a = Network(nx.cycle_graph(12), seed=0)
        network_b = Network(nx.cycle_graph(12), seed=1)
        session_a, _config = _open_process_session(network_a)
        session_b, _config = _open_process_session(network_b)
        with session_b:
            session_a.execute(_OutputIsPid())
            session_b.execute(_OutputIsPid())
            started = time.time()
            session_a.close()
            elapsed = time.time() - started
            assert elapsed < 4.0, (
                "closing a pool while another is live took %.1fs — its "
                "workers did not exit on EOF" % elapsed
            )
            # B is untouched: same pids keep serving.
            still = set(
                session_b.execute(
                    _OutputIsPid(), reuse_contexts=True
                ).outputs.values()
            )
            assert len(still) == 3
        _assert_no_worker_processes()

    def test_session_worker_harness_failure_reports_real_error(self, monkeypatch):
        # A worker that fails while *building* its harness (e.g. an shm
        # attach race) must ship the actual exception back, not die into a
        # generic "died without reporting".  Fork inherits the patch.
        from repro.congest.sharding import workers as workers_module

        def broken_init(self, init):
            raise RuntimeError("harness build exploded")

        monkeypatch.setattr(
            workers_module._WorkerHarness, "__init__", broken_init
        )
        network = Network(nx.cycle_graph(9), seed=0)
        session, _config = _open_process_session(network)
        with session:
            with pytest.raises(RuntimeError, match="harness build exploded"):
                session.execute(_PingAll())
        _assert_no_worker_processes()

    def test_session_mode_validation(self):
        network = Network(nx.cycle_graph(6), seed=0)
        with pytest.raises(ValueError, match="unknown session mode"):
            get_engine("batched").open_session(
                network, CongestConfig(session_mode="bogus")
            )
        with pytest.raises(ValueError, match="unknown session mode"):
            get_engine("sharded").open_session(
                network, CongestConfig(session_mode="bogus")
            )
        assert (
            CongestConfig().with_session_mode("persistent").session_mode
            == "persistent"
        )

    def test_session_default_is_thin_wrapper(self):
        # Engines without per-execute setup return the base session even in
        # persistent mode; the sharded in-process backends likewise.
        network = Network(nx.cycle_graph(6), seed=0)
        thin = get_engine("batched").open_session(
            network, CongestConfig(session_mode="persistent")
        )
        assert type(thin) is CongestSession
        assert thin.stats is None
        serial = get_engine("sharded").open_session(
            network,
            CongestConfig(session_mode="persistent").with_sharding(
                shards=2, backend="serial"
            ),
        )
        assert type(serial) is CongestSession
        with thin:
            result = thin.execute(_PingAll())
        assert result.outputs == {v: 2 for v in range(6)}
        with pytest.raises(ProtocolError, match="closed"):
            thin.execute(_PingAll())

    def test_session_scheduler_rejects_foreign_network(self):
        network = Network(nx.cycle_graph(6), seed=0)
        other = Network(nx.cycle_graph(6), seed=0)
        with get_engine("batched").open_session(network, CongestConfig()) as session:
            with pytest.raises(ValueError, match="session"):
                run_protocol(other, _PingAll(), session=session)


def _three_cliques() -> nx.Graph:
    """Three 10-cliques on contiguous id ranges — one per contiguous shard."""
    graph = nx.Graph()
    for block in range(3):
        members = range(block * 10, block * 10 + 10)
        graph.add_nodes_from(members)
        for i in members:
            for j in members:
                if i < j:
                    graph.add_edge(i, j)
    return graph


class TestSessionDeltaAbsorption:
    """A persistent session absorbs ``Network.apply_delta`` mutations.

    The fingerprint check distinguishes two divergences: one fully
    explained by the network's delta ledger (repair the plan, respawn
    only the dirty shards' workers) and an external mutation behind the
    API (still fatal, as ever).  Names carry ``session`` so CI's session
    job runs these alongside the differential arm.
    """

    def test_session_absorbs_delta_respawning_only_dirty_shards(self):
        network = Network(_three_cliques(), seed=0)
        session, _config = _open_process_session(network)
        with session:
            before = dict(session.execute(_OutputIsPid()).outputs)
            network.apply_delta(removals=[(25, 26)])
            after = dict(
                session.execute(_OutputIsPid(), reuse_contexts=True).outputs
            )
            assert session.repairs == 1
            touched, dirty = session.last_repair
            assert set(touched) == {25, 26}
            assert dirty == (2,)
            assert session.last_respawned_shards == (2,)
            # Clean shards kept their worker processes; the dirty shard
            # got a fresh one.
            for node in range(20):
                assert before[node] == after[node], "clean worker respawned"
            assert before[25] != after[25], "dirty worker not respawned"
        _assert_no_worker_processes()

    def test_session_absorbed_delta_outputs_match_reference(self):
        graph = _three_cliques()
        network = Network(graph, seed=0)
        session, _config = _open_process_session(network)
        with session:
            session.execute(_PingAll())
            network.apply_delta(additions=[(0, 15)], removals=[(21, 22)])
            got = session.execute(_PingAll(), reuse_contexts=True).outputs
        graph.add_edge(0, 15)
        graph.remove_edge(21, 22)
        fresh = Network(graph, seed=0)
        expected = run_protocol(
            fresh, _PingAll(), config=CongestConfig(engine="reference")
        ).outputs
        assert got == expected
        _assert_no_worker_processes()

    def test_session_cross_shard_delta_respawns_both_owners(self):
        network = Network(_three_cliques(), seed=0)
        session, _config = _open_process_session(network)
        with session:
            before = dict(session.execute(_OutputIsPid()).outputs)
            network.apply_delta(additions=[(5, 25)])
            after = dict(
                session.execute(_OutputIsPid(), reuse_contexts=True).outputs
            )
            assert set(session.last_respawned_shards) >= {0, 2}
            assert 1 not in session.last_respawned_shards
            for node in range(10, 20):
                assert before[node] == after[node]
        _assert_no_worker_processes()

    def test_session_external_mutation_after_delta_still_raises(self):
        # A delta followed by an out-of-band mutation: the ledger's last
        # fingerprint no longer matches the live CSR, so the divergence is
        # not explained and the session must refuse, not "repair".
        network = Network(_three_cliques(), seed=0)
        session, _config = _open_process_session(network)
        with session:
            session.execute(_PingAll())
            network.apply_delta(removals=[(3, 4)])
            network.graph.add_edge(0, 15)
            with pytest.raises(ProtocolError, match="mutated"):
                session.execute(_PingAll(), reuse_contexts=True)
            _assert_no_worker_processes()
        _assert_no_worker_processes()

    def test_session_repaired_plan_keeps_invariants_and_fingerprints(self):
        network = Network(_three_cliques(), seed=0)
        plan = partition_network(network, 3)
        before = shard_fingerprints(network, plan)
        network.apply_delta(removals=[(25, 26)])
        repaired, dirty = repair_plan(network, plan, {25, 26})
        _check_plan_invariants(repaired, network)
        assert dirty == (2,)
        after = shard_fingerprints(network, repaired)
        assert before[0] == after[0] and before[1] == after[1]
        assert before[2] != after[2]

    def test_session_serial_sharded_recomputes_after_delta(self):
        # The per-call sharded engine has no pool to repair; it must simply
        # not serve a stale memoised plan after a delta.
        graph = _three_cliques()
        network = Network(graph, seed=0)
        config = CongestConfig(engine="sharded").with_sharding(
            shards=3, backend="serial"
        )
        first = run_protocol(network, _PingAll(), config=config).outputs
        network.apply_delta(additions=[(0, 15)])
        second = run_protocol(network, _PingAll(), config=config).outputs
        graph.add_edge(0, 15)
        expected = run_protocol(
            Network(graph, seed=0),
            _PingAll(),
            config=CongestConfig(engine="reference"),
        ).outputs
        assert second == expected
        assert first != second


class TestShardingStatsAccounting:
    """``observe_run`` is the single accumulation path; properties stay
    finite on empty/zero-denominator sessions."""

    def test_observe_phase_counts_each_execute_once(self):
        # Regression for the double-accounting risk: a phase observation
        # must go through the same single accumulation path as a direct run
        # observation, so totals count every execute exactly once even when
        # both an engine-level and a session-level observer exist.
        stats = ShardingStats()
        stats.observe_run(10, 4, 0, 0, 0.5)
        stats.observe_phase("phase-a", 20, 6, 128, 3, 0.25)
        stats.observe_phase("phase-b", 30, 8, 256, 5, 0.25)
        assert stats.runs == 3
        assert stats.protocol_messages == 60
        assert stats.cross_shard_messages == 18
        assert stats.boundary_bytes == 384
        assert stats.barrier_rounds == 8
        assert stats.setup_seconds == pytest.approx(1.0)
        # Phase partials record only the phase-labelled observations, and
        # the totals equal direct-run + phase contributions with no double
        # counting.
        assert [phase.label for phase in stats.phases] == ["phase-a", "phase-b"]
        assert stats.protocol_messages == 10 + sum(
            phase.protocol_messages for phase in stats.phases
        )
        assert stats.boundary_bytes == sum(
            phase.boundary_bytes for phase in stats.phases
        )

    def test_zero_denominator_properties(self):
        stats = ShardingStats()
        assert stats.cross_shard_fraction == 0.0
        assert stats.bytes_per_round == 0.0
        assert stats.setup_seconds_per_phase == 0.0
        # A recorded run with zero barriers/messages (empty network, or an
        # in-process backend that never serializes) must not divide by zero.
        stats.observe_phase("empty", 0, 0, 0, 0, 0.0)
        assert stats.runs == 1
        assert stats.cross_shard_fraction == 0.0
        assert stats.bytes_per_round == 0.0
        assert stats.setup_seconds_per_phase == 0.0

    def test_phase_list_growth_over_long_session(self):
        stats = ShardingStats()
        for index in range(25):
            stats.observe_phase("phase-%d" % index, 2, 1, 10, 2, 0.1)
        assert stats.runs == 25
        assert len(stats.phases) == 25
        assert [phase.label for phase in stats.phases] == [
            "phase-%d" % index for index in range(25)
        ]
        assert stats.setup_seconds_per_phase == pytest.approx(0.1)
        assert stats.bytes_per_round == pytest.approx(5.0)
        assert stats.protocol_messages == 50

    def test_multi_phase_persistent_session_totals_pinned(self):
        # End-to-end totals over a real persistent session mixing fresh and
        # reuse executes: runs == phases, totals == sum of partials.
        network = Network(nx.cycle_graph(12), seed=0)
        session, _config = _open_process_session(network, shards=2)
        with session:
            session.execute(_PingAll())
            session.execute(_PingAll(), reuse_contexts=True)
            session.execute(_PingAll())  # fresh contexts: pool respawn path
            stats = session.stats
        assert stats.runs == 3 == len(stats.phases)
        for field in (
            "protocol_messages",
            "cross_shard_messages",
            "boundary_bytes",
            "barrier_rounds",
        ):
            assert getattr(stats, field) == sum(
                getattr(phase, field) for phase in stats.phases
            ), "session total %r diverged from its phase partials" % field
        assert stats.setup_seconds == pytest.approx(
            sum(phase.setup_seconds for phase in stats.phases)
        )
        assert stats.protocol_messages == 3 * 24  # cycle ping-all, 3 runs
        _assert_no_worker_processes()


class TestPipelineFusionSession:
    """``pipeline_mode="fuse"`` on a persistent process session.

    Bit-identity of fused *results* lives in the differential suite; this
    class pins the coordination claim itself: the composite runner ships
    whole fused groups (one ``arm-seq``, workers self-arm between phases),
    so the session's pool re-arms stay strictly below the phases executed.
    Test names carry ``session`` so CI's session job selects them.
    """

    def test_session_fused_composite_elides_rearms(self):
        from repro.core.dist_near_clique import DistNearCliqueRunner

        graph = nx.connected_caveman_graph(2, 8)
        config = CongestConfig(
            engine="sharded",
            shards=2,
            shard_backend="process",
            session_mode="persistent",
            pipeline_mode="fuse",
        )
        runner = DistNearCliqueRunner(
            epsilon=0.25,
            sample_probability=0.05,
            max_sample_size=None,
            rng=random.Random(3),
            config=config,
        )
        result = runner.run(graph, sample=(0, 1, 9))
        assert not result.aborted

        stats = runner.last_session_stats
        phases_executed = len(stats.phases)
        # The satellite invariant: strictly fewer pool re-arms than phases.
        assert stats.rearms < phases_executed
        # And the exact plan shape: the sampling phase plus one arm-seq
        # covering the entire fused exploration+decision suffix.
        assert stats.rearms == 2
        assert stats.fused_phases == phases_executed - stats.rearms
        plan = runner.last_pipeline_plan
        assert plan is not None
        assert plan.fused_phase_count == stats.fused_phases
        assert any(group.fused for group in plan.groups)
        # Per-phase accounting survives fusion: every phase label is still
        # observed, and totals equal the sum of the partials.
        assert stats.protocol_messages == sum(
            phase.protocol_messages for phase in stats.phases
        )
        _assert_no_worker_processes()


class TestSessionModeConstructionValidation:
    """``session_mode`` typos fail at config construction (satellite fix)."""

    def test_constructor_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown session mode"):
            CongestConfig(session_mode="presistent")

    def test_error_lists_allowed_values(self):
        with pytest.raises(ValueError, match="per-call, persistent"):
            CongestConfig(session_mode="bogus")

    def test_with_session_mode_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown session mode"):
            CongestConfig().with_session_mode("bogus")

    def test_replace_reruns_validation(self):
        config = CongestConfig(session_mode="persistent")
        with pytest.raises(ValueError, match="unknown session mode"):
            dataclasses.replace(config, session_mode="bogus")

    def test_valid_modes_construct(self):
        assert CongestConfig(session_mode="per-call").session_mode == "per-call"
        assert (
            CongestConfig().with_session_mode("persistent").session_mode
            == "persistent"
        )


class TestShardingKnobConstructionValidation:
    """``shards`` / ``shard_workers`` nonsense fails at config construction.

    ``shard_workers=0`` stays legal — it is the documented serial
    deterministic mode and the repo-wide default — so the floor is 0 for
    workers and 1 for shards.
    """

    def test_constructor_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            CongestConfig(shards=0)

    def test_constructor_rejects_negative_shards(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            CongestConfig(shards=-3)

    def test_constructor_rejects_negative_workers(self):
        with pytest.raises(ValueError, match="shard_workers must be >= 0"):
            CongestConfig(shard_workers=-1)

    def test_error_messages_carry_the_offending_value(self):
        with pytest.raises(ValueError, match=r"\(got 0\)"):
            CongestConfig(shards=0)
        with pytest.raises(ValueError, match=r"\(got -2\)"):
            CongestConfig(shard_workers=-2)

    def test_replace_reruns_validation(self):
        config = CongestConfig().with_sharding(shards=4, workers=2)
        with pytest.raises(ValueError, match="shards must be >= 1"):
            dataclasses.replace(config, shards=0)
        with pytest.raises(ValueError, match="shard_workers must be >= 0"):
            dataclasses.replace(config, shard_workers=-1)

    def test_with_sharding_reruns_validation(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            CongestConfig().with_sharding(shards=-1)

    def test_valid_boundary_values_construct(self):
        assert CongestConfig(shards=1).shards == 1
        assert CongestConfig(shard_workers=0).shard_workers == 0
        derived = CongestConfig().with_sharding(shards=1, workers=0)
        assert (derived.shards, derived.shard_workers) == (1, 0)
