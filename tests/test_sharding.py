"""Tests for the sharding subsystem: partitioner, plan invariants, engine knobs.

The differential suite (``tests/test_engine_equivalence.py``) already holds
``engine="sharded"`` to the bit-identical contract across protocols, shard
counts and strategies; this module covers the partitioner itself — plan
invariants on awkward graphs (disconnected, k > n, mixed labels),
determinism under a fixed seed, cut statistics — and the engine's
configuration surface (single shard degenerating to batched, thread mode,
traffic statistics).
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.config import CongestConfig
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Protocol
from repro.congest.scheduler import run_protocol
from repro.congest.sharding import (
    PARTITION_STRATEGIES,
    ShardPlan,
    ShardedEngine,
    partition_network,
)
from repro.primitives.bfs_tree import KEY_PARTICIPANT, MinIdBFSTreeProtocol


def _check_plan_invariants(plan: ShardPlan, network: Network) -> None:
    """The structural promises every plan makes, regardless of strategy."""
    n = network.n
    assert plan.n == n
    assert len(plan.shards) == plan.n_shards
    # Every node owned exactly once, shard lists ascending and consistent
    # with the owner array.
    seen = []
    for shard_index, owned in enumerate(plan.shards):
        assert list(owned) == sorted(owned)
        for dense in owned:
            assert plan.owner[dense] == shard_index
        seen.extend(owned)
    assert sorted(seen) == list(range(n))
    # The cut partitions the edge set.
    assert plan.cut_edges + plan.internal_edges == network.number_of_edges()
    assert plan.total_edges == network.number_of_edges()
    for u, v in plan.boundary_edges:
        assert u < v
        assert plan.owner[u] != plan.owner[v]
    if plan.total_edges:
        assert 0.0 <= plan.cut_fraction <= 1.0
    else:
        assert plan.cut_fraction == 0.0


@pytest.fixture(params=PARTITION_STRATEGIES)
def strategy(request):
    return request.param


class TestPartitioner:
    def test_invariants_on_random_graph(self, strategy):
        network = Network(nx.gnp_random_graph(40, 0.15, seed=2), seed=1)
        for k in (1, 2, 3, 7):
            plan = partition_network(network, k, strategy=strategy, seed=5)
            _check_plan_invariants(plan, network)

    def test_disconnected_graph_fully_assigned(self, strategy):
        # Three components plus isolated nodes: every node must land in a
        # shard even when no BFS seed reaches its component.
        graph = nx.Graph()
        graph.add_edges_from(nx.path_graph(6).edges())
        graph.add_edges_from((10 + u, 10 + v) for u, v in nx.cycle_graph(5).edges())
        graph.add_edges_from([(20, 21), (21, 22)])
        graph.add_nodes_from([30, 31, 32])
        network = Network(graph, seed=0)
        plan = partition_network(network, 3, strategy=strategy, seed=4)
        _check_plan_invariants(plan, network)

    def test_more_shards_than_nodes(self, strategy):
        network = Network(nx.path_graph(3), seed=0)
        plan = partition_network(network, 8, strategy=strategy, seed=1)
        _check_plan_invariants(plan, network)
        assert plan.n_shards == 8
        # Exactly n shards are non-empty; the surplus shards are empty.
        assert sum(1 for owned in plan.shards if owned) == 3

    def test_mixed_label_network(self, strategy):
        # Mixed int/str labels exercise the deterministic relabelling; the
        # partitioner only ever sees the dense CSR index.
        graph = nx.Graph([("a", 3), (3, "b"), ("b", 7), (7, "a"), ("c", 3)])
        network = Network(graph, seed=9)
        plan = partition_network(network, 2, strategy=strategy, seed=2)
        _check_plan_invariants(plan, network)

    def test_deterministic_under_fixed_seed(self, strategy):
        graph = nx.gnp_random_graph(36, 0.2, seed=6)
        for seed in (0, 1, 17):
            plans = [
                partition_network(Network(graph, seed=3), 4, strategy=strategy, seed=seed)
                for _ in range(2)
            ]
            assert plans[0] == plans[1]

    def test_bfs_seed_moves_the_plan(self):
        # Not a hard guarantee on every graph, but on a sparse random graph
        # two far-apart seed draws should place regions differently.
        network = Network(nx.gnp_random_graph(60, 0.08, seed=3), seed=0)
        plans = {
            partition_network(network, 4, strategy="bfs", seed=seed).owner
            for seed in range(6)
        }
        assert len(plans) > 1

    def test_contiguous_blocks_are_contiguous_and_balanced(self):
        network = Network(nx.path_graph(10), seed=0)
        plan = partition_network(network, 3)
        assert plan.shards == ((0, 1, 2, 3), (4, 5, 6), (7, 8, 9))
        # A path cut into 3 blocks crosses exactly 2 edges.
        assert plan.cut_edges == 2

    def test_balanced_sizes(self, strategy):
        network = Network(nx.gnp_random_graph(41, 0.2, seed=8), seed=0)
        plan = partition_network(network, 4, strategy=strategy, seed=0)
        sizes = plan.shard_sizes
        assert sum(sizes) == 41
        assert max(sizes) - min(sizes) <= 11  # ceil(n/k) capacity bound

    def test_rejects_bad_inputs(self):
        network = Network(nx.path_graph(4), seed=0)
        with pytest.raises(ValueError, match="at least 1"):
            partition_network(network, 0)
        with pytest.raises(ValueError, match="unknown partition strategy"):
            partition_network(network, 2, strategy="metis")

    def test_describe_mentions_cut(self):
        network = Network(nx.cycle_graph(8), seed=0)
        text = partition_network(network, 2).describe()
        assert "cut" in text and "contiguous" in text


class _PingAll(Protocol):
    """One broadcast round, then halt — tiny deterministic traffic source."""

    name = "ping-all"
    quiesce_terminates = True

    def on_start(self, ctx):
        ctx.send_all(Message(kind="ping", payload=(ctx.node_id,)))

    def on_round(self, ctx, inbox):
        ctx.write_output(len(inbox))
        ctx.halt()


class TestShardedEngineKnobs:
    def _fingerprint(self, result):
        m = result.metrics
        return (result.outputs, m.rounds, m.total_messages, m.total_bits)

    def test_single_shard_matches_batched(self):
        # k=1 routes nothing across a boundary: the run must degenerate to
        # the batched engine's semantics exactly.
        graph = nx.gnp_random_graph(24, 0.2, seed=4)
        per_node = {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}
        results = {}
        for name, config in (
            ("batched", CongestConfig(engine="batched")),
            ("sharded", CongestConfig().with_sharding(shards=1)),
        ):
            network = Network(graph, seed=11)
            results[name] = run_protocol(
                network,
                MinIdBFSTreeProtocol(),
                config=config.with_log_budget(24),
                per_node_inputs=per_node,
            )
        assert self._fingerprint(results["sharded"]) == self._fingerprint(
            results["batched"]
        )

    def test_engine_instance_overrides_config(self):
        engine = ShardedEngine(shards=2, strategy="bfs", partition_seed=7)
        network = Network(nx.cycle_graph(10), seed=1)
        result = run_protocol(
            network,
            _PingAll(),
            config=CongestConfig(shards=64),  # overridden by the instance
            engine=engine,
        )
        assert result.outputs == {v: 2 for v in range(10)}

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            ShardedEngine(shards=0)

    def test_stats_collection_counts_cross_shard_traffic(self):
        # On a cycle cut into two contiguous arcs, exactly the messages on
        # the two cut edges (both directions) cross shards.
        engine = ShardedEngine(shards=2, collect_stats=True)
        network = Network(nx.cycle_graph(10), seed=1)
        result = run_protocol(network, _PingAll(), config=CongestConfig(), engine=engine)
        stats = engine.stats
        assert stats is not None
        assert stats.runs == 1
        assert stats.protocol_messages == result.metrics.total_messages == 20
        assert stats.cross_shard_messages == 4  # 2 cut edges x 2 directions
        assert stats.cross_shard_fraction == pytest.approx(0.2)
        assert stats.plans[0].cut_edges == 2

    def test_registry_instance_collects_no_stats(self):
        from repro.congest.engine import get_engine

        assert get_engine("sharded").stats is None

    @pytest.mark.parametrize("workers", [0, 1, 2, 4])
    def test_worker_counts_all_agree(self, workers):
        graph = nx.gnp_random_graph(30, 0.2, seed=12)
        per_node = {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}
        network = Network(graph, seed=2)
        config = CongestConfig().with_sharding(shards=3, workers=workers)
        result = run_protocol(
            network,
            MinIdBFSTreeProtocol(),
            config=config.with_log_budget(30),
            per_node_inputs=per_node,
        )
        serial_network = Network(graph, seed=2)
        serial = run_protocol(
            serial_network,
            MinIdBFSTreeProtocol(),
            config=CongestConfig().with_sharding(shards=3, workers=0).with_log_budget(30),
            per_node_inputs=per_node,
        )
        assert self._fingerprint(result) == self._fingerprint(serial)

    def test_empty_network(self, strategy):
        network = Network(nx.Graph(), seed=0)
        result = run_protocol(
            network,
            _PingAll(),
            config=CongestConfig().with_sharding(shards=4, strategy=strategy),
        )
        assert result.outputs == {}
        assert result.metrics.rounds == 0

    def test_pool_dispatch_path_is_exercised(self, monkeypatch):
        # POOL_MIN_WORK keeps unit-sized rounds off the pool, so pin it to
        # zero here: every round must go through the chunked pool dispatch
        # and still be bit-identical to the serial mode.
        from repro.congest.sharding.engine import _ShardedRun

        monkeypatch.setattr(_ShardedRun, "POOL_MIN_WORK", 0)
        dispatches = {"pool": 0}
        original = _ShardedRun._run_shards

        def counting(self, step, work_hint):
            if self.pool is not None and work_hint >= self.POOL_MIN_WORK:
                dispatches["pool"] += 1
            return original(self, step, work_hint)

        monkeypatch.setattr(_ShardedRun, "_run_shards", counting)

        graph = nx.gnp_random_graph(30, 0.2, seed=12)
        per_node = {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}
        results = {}
        for workers in (0, 3):
            network = Network(graph, seed=2)
            result = run_protocol(
                network,
                MinIdBFSTreeProtocol(),
                config=CongestConfig()
                .with_sharding(shards=3, workers=workers)
                .with_log_budget(30),
                per_node_inputs=per_node,
            )
            results[workers] = self._fingerprint(result)
        assert dispatches["pool"] > 0, "thread mode never reached the pool"
        assert results[3] == results[0]
