"""Tests for the centralized reference implementation."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core import near_clique
from repro.core.params import AlgorithmParameters
from repro.core.reference import CentralizedNearCliqueFinder
from repro.graphs import generators


class TestSamplingAndComponents:
    def test_draw_sample_respects_probability_extremes(self):
        graph = nx.complete_graph(10)
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        assert finder.draw_sample(0.0, random.Random(1)) == set()
        assert finder.draw_sample(1.0, random.Random(1)) == set(range(10))

    def test_draw_sample_deterministic_given_rng(self):
        graph = nx.complete_graph(30)
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        a = finder.draw_sample(0.3, random.Random(7))
        b = finder.draw_sample(0.3, random.Random(7))
        assert a == b

    def test_components_of_sample(self):
        graph = nx.path_graph(6)
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        components = finder.sample_components({0, 1, 3, 5})
        assert components == [(0, 1), (3,), (5,)]

    def test_audience_is_members_plus_neighbors(self):
        graph = nx.star_graph(5)
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        assert finder.audience_of((0,)) == frozenset(range(6))
        assert finder.audience_of((3,)) == frozenset({0, 3})

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            CentralizedNearCliqueFinder(nx.complete_graph(3), 0.0)


class TestComponentAnalysis:
    def test_t_sets_match_generic_operator(self):
        graph = nx.gnp_random_graph(25, 0.35, seed=3)
        finder = CentralizedNearCliqueFinder(graph, 0.25)
        members = (2, 7, 9)
        analysis = finder.analyze_component(members)
        for index, subset in near_clique.iter_nonempty_subsets(members):
            expected = near_clique.t_eps(graph, subset, 0.25)
            assert analysis.t_sets[index] == frozenset(expected)

    def test_k_sets_match_generic_operator(self):
        graph = nx.gnp_random_graph(20, 0.4, seed=8)
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        members = (1, 4, 6, 11)
        analysis = finder.analyze_component(members)
        inner = 2 * 0.2 ** 2
        for index, subset in near_clique.iter_nonempty_subsets(members):
            expected = near_clique.k_eps(graph, subset, inner)
            assert analysis.k_sets[index] == frozenset(expected)

    def test_best_subset_maximises_t(self):
        graph, _ = generators.planted_near_clique(40, 0.5, 0.0, 0.05, seed=2)
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        analysis = finder.analyze_component((0, 3, 5))
        best = max(len(t) for t in analysis.t_sets.values())
        assert analysis.best_size == best
        assert len(analysis.t_sets[analysis.best_index]) == best

    def test_best_index_tie_break_is_smallest(self):
        # On an empty graph every T is empty; the smallest index must win.
        graph = nx.empty_graph(6)
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        analysis = finder.analyze_component((0, 1))
        assert analysis.best_index == 1
        assert analysis.best_size == 0

    def test_lemma_5_3_on_every_candidate(self):
        graph, _ = generators.planted_near_clique(50, 0.4, 0.008, 0.06, seed=4)
        epsilon = 0.2
        finder = CentralizedNearCliqueFinder(graph, epsilon)
        analysis = finder.analyze_component((0, 2, 8, 11))
        n = graph.number_of_nodes()
        for t_set in analysis.t_sets.values():
            if len(t_set) <= 1:
                continue
            bound = near_clique.lemma_5_3_defect_bound(n, len(t_set), epsilon)
            assert near_clique.near_clique_defect(graph, t_set) <= bound + 1e-9


class TestDecision:
    def test_single_candidate_survives(self):
        graph = nx.complete_graph(8)
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        analysis = finder.analyze_component((0, 1))
        survived, votes = finder.decide([analysis])
        assert survived[0] is True
        assert set(votes.values()) == {0}

    def test_smaller_overlapping_candidate_aborted(self):
        graph, _ = generators.planted_near_clique(40, 0.6, 0.0, 0.3, seed=9)
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        big = finder.analyze_component((0, 1, 2))
        small = finder.analyze_component((30, 33))
        if not (big.audience & small.audience):
            pytest.skip("construction did not overlap; adjust seed")
        survived, _ = finder.decide([big, small])
        assert survived[big.root] != survived[small.root] or (
            big.best_size == small.best_size
        )
        # The larger candidate always survives its own audience's vote.
        assert survived[big.root] is True

    def test_vote_tie_break_prefers_larger_root(self):
        choice = CentralizedNearCliqueFinder._vote([(3, 10), (7, 10), (5, 9)])
        assert choice == 7

    def test_disjoint_candidates_both_survive(self):
        graph = nx.Graph()
        graph.add_edges_from(nx.complete_graph(5).edges())
        graph.add_edges_from((u + 10, v + 10) for u, v in nx.complete_graph(5).edges())
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        a = finder.analyze_component((0, 1))
        b = finder.analyze_component((10, 11))
        survived, _ = finder.decide([a, b])
        assert survived[0] and survived[10]


class TestFullRuns:
    def test_run_with_sample_labels_are_t_sets_of_survivors(self):
        graph, planted = generators.planted_near_clique(60, 0.5, 0.008, 0.05, seed=7)
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        sample = finder.draw_sample(0.12, random.Random(3))
        result = finder.run_with_sample(sample)
        for candidate in result.candidates:
            if candidate.survived:
                for node in candidate.members:
                    assert result.labels[node] == candidate.component_root
            else:
                assert all(
                    result.labels[node] != candidate.component_root
                    for node in candidate.members
                    if result.labels[node] is not None
                ) or candidate.members == frozenset()

    def test_surviving_clusters_are_disjoint(self):
        graph, _ = generators.planted_near_clique(60, 0.5, 0.008, 0.05, seed=11)
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        for seed in range(6):
            sample = finder.draw_sample(0.15, random.Random(seed))
            result = finder.run_with_sample(sample)
            seen = set()
            for candidate in result.candidates:
                if not candidate.survived:
                    continue
                assert not (candidate.members & seen)
                seen |= candidate.members

    def test_labels_cover_exactly_survivor_members(self):
        graph, _ = generators.planted_near_clique(50, 0.4, 0.008, 0.08, seed=5)
        finder = CentralizedNearCliqueFinder(graph, 0.25)
        sample = finder.draw_sample(0.15, random.Random(2))
        result = finder.run_with_sample(sample)
        labelled = {v for v, label in result.labels.items() if label is not None}
        survivor_members = set()
        for candidate in result.candidates:
            if candidate.survived:
                survivor_members |= candidate.members
        assert labelled == survivor_members

    def test_min_output_size_filters_small_candidates(self):
        graph = nx.path_graph(12)
        finder = CentralizedNearCliqueFinder(graph, 0.3, min_output_size=5)
        result = finder.run_with_sample({0, 4, 8})
        assert result.labelled_nodes == frozenset()

    def test_run_aborts_on_large_sample(self):
        graph = nx.complete_graph(30)
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        params = AlgorithmParameters(
            epsilon=0.2, sample_probability=1.0, max_sample_size=5
        )
        result = finder.run(params, rng=random.Random(1))
        assert result.aborted
        assert result.labelled_nodes == frozenset()
        assert "exceeds" in (result.abort_reason or "")

    def test_run_without_abort_records_probability(self):
        graph, _ = generators.planted_near_clique(40, 0.5, 0.0, 0.05, seed=3)
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        params = AlgorithmParameters(
            epsilon=0.2, sample_probability=0.1, max_sample_size=14
        )
        result = finder.run(params, rng=random.Random(4))
        assert not result.aborted
        assert result.sample_probability == pytest.approx(0.1)

    def test_empty_sample_produces_bot_everywhere(self):
        graph = nx.complete_graph(10)
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        result = finder.run_with_sample(set())
        assert result.labelled_nodes == frozenset()
        assert result.components == ()

    def test_planted_clique_recovered_with_good_sample(self):
        graph, planted = generators.planted_near_clique(60, 0.5, 0.0, 0.04, seed=13)
        finder = CentralizedNearCliqueFinder(graph, 0.15)
        # Hand the finder a sample containing three clique members.
        sample = {0, 1, 2}
        result = finder.run_with_sample(sample)
        assert result.recall_of(planted.members) >= 0.9
        assert result.largest_cluster_density(graph) >= 0.9
