"""White-box tests for individual DistNearClique phases.

The integration tests assert end-to-end equivalence with the oracle; the
tests here pin down the intermediate invariants of the CONGEST phases (who
samples, who attaches where, what the roots aggregate), which makes protocol
regressions much easier to localise.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.congest.config import CongestConfig
from repro.congest.network import Network
from repro.congest.scheduler import run_protocol
from repro.core import near_clique, phases
from repro.core.reference import CentralizedNearCliqueFinder
from repro.graphs import generators
from repro.primitives.bfs_tree import (
    KEY_PARENT,
    KEY_ROOT,
    MinIdBFSTreeProtocol,
    ParentNotificationProtocol,
)
from repro.primitives.broadcast import TreeBroadcastProtocol
from repro.primitives.convergecast import KEY_COLLECTED, ConvergecastCollectProtocol


def run_pipeline_until(graph, sample, epsilon, last_phase_index, seed=1):
    """Run the DistNearClique phase sequence up to (and incl.) an index."""
    network = Network(graph, seed=seed)
    config = CongestConfig().with_log_budget(network.n)
    global_inputs = {
        phases.GLOBAL_EPSILON: epsilon,
        phases.GLOBAL_SAMPLE_PROBABILITY: 0.0,
        phases.GLOBAL_MIN_OUTPUT_SIZE: 0,
        phases.GLOBAL_STEP4F_SAMPLING: False,
        phases.GLOBAL_STEP4F_SAMPLE_SIZE: 32,
    }
    per_node = {
        v: {phases.KEY_FORCED_SAMPLE: v in sample} for v in network.node_ids
    }
    sequence = [
        phases.SamplingPhase(),
        MinIdBFSTreeProtocol(),
        ParentNotificationProtocol(),
        ConvergecastCollectProtocol(),
        TreeBroadcastProtocol(input_key=KEY_COLLECTED, output_key=phases.KEY_COMP_BCAST),
        phases.CompDisseminationPhase(),
        phases.LocalSubsetPhase(),
        phases.UpAggregationPhase(
            membership_key=phases.KEY_K_MEMBERSHIP,
            result_key=phases.KEY_K_ROOT_SIZES,
            label="nc-k-aggregation",
        ),
        phases.DownBroadcastPhase(
            items_fn=phases.k_size_items,
            store_fn=phases.store_k_size,
            label="nc-k-size-broadcast",
        ),
        phases.KAnnouncePhase(),
        phases.UpAggregationPhase(
            membership_key=phases.KEY_T_MEMBERSHIP,
            result_key=phases.KEY_T_ROOT_SIZES,
            pre_start=phases.build_t_membership,
            root_finalize=phases.select_best_subset,
            label="nc-t-aggregation",
        ),
        phases.DownBroadcastPhase(
            items_fn=phases.best_items,
            store_fn=phases.store_best,
            label="nc-best-broadcast",
        ),
        phases.VotePhase(),
        phases.FinalLabelPhase(),
    ]
    first = True
    for phase in sequence[: last_phase_index + 1]:
        run_protocol(
            network,
            phase,
            config=config,
            global_inputs=global_inputs if first else None,
            per_node_inputs=per_node if first else None,
            reuse_contexts=not first,
        )
        first = False
    return network


@pytest.fixture
def workload():
    graph, planted = generators.planted_near_clique(
        n=40, clique_fraction=0.5, epsilon=0.008, background_p=0.06, seed=3
    )
    return graph, planted


SAMPLE = {0, 2, 5, 30}
EPS = 0.2


class TestSamplingPhase:
    def test_forced_sample_respected(self, workload):
        graph, _ = workload
        network = run_pipeline_until(graph, SAMPLE, EPS, 0)
        in_sample = {
            v
            for v, ctx in network.contexts.items()
            if ctx.state.get(phases.KEY_IN_SAMPLE)
        }
        assert in_sample == SAMPLE

    def test_coin_flip_probability_extremes(self, workload):
        graph, _ = workload
        network = Network(graph, seed=5)
        run_protocol(
            network,
            phases.SamplingPhase(),
            global_inputs={phases.GLOBAL_SAMPLE_PROBABILITY: 1.0, phases.GLOBAL_EPSILON: EPS},
        )
        assert all(
            ctx.state[phases.KEY_IN_SAMPLE] for ctx in network.contexts.values()
        )


class TestCompDissemination:
    def test_neighbors_learn_component_membership(self, workload):
        graph, _ = workload
        network = run_pipeline_until(graph, SAMPLE, EPS, 5)
        finder = CentralizedNearCliqueFinder(graph, EPS)
        components = finder.sample_components(SAMPLE)
        for members in components:
            member_set = set(members)
            for ctx in network.contexts.values():
                node = ctx.node_id
                if node in SAMPLE:
                    continue
                adjacent = set(graph[node]) & member_set
                records = ctx.state.get(phases.KEY_ADJ_COMPONENTS, {})
                if adjacent:
                    assert members[0] in records
                    assert set(records[members[0]]["members"]) == member_set
                    assert set(records[members[0]]["senders"]) == adjacent
                else:
                    assert members[0] not in records


class TestLocalSubsetPhase:
    def test_attach_parents_belong_to_component(self, workload):
        graph, _ = workload
        network = run_pipeline_until(graph, SAMPLE, EPS, 6)
        for ctx in network.contexts.values():
            attach = ctx.state.get(phases.KEY_ATTACH_PARENT, {})
            for root, parent in attach.items():
                assert parent in SAMPLE
                assert network.contexts[parent].state[KEY_ROOT] == root
                assert graph.has_edge(ctx.node_id, parent)

    def test_attached_leaves_match_attach_parents(self, workload):
        graph, _ = workload
        network = run_pipeline_until(graph, SAMPLE, EPS, 6)
        expected = {v: set() for v in SAMPLE}
        for ctx in network.contexts.values():
            for _root, parent in ctx.state.get(phases.KEY_ATTACH_PARENT, {}).items():
                expected[parent].add(ctx.node_id)
        for member in SAMPLE:
            assert (
                set(network.contexts[member].state.get(phases.KEY_ATTACHED_LEAVES, set()))
                == expected[member]
            )

    def test_k_membership_matches_direct_evaluation(self, workload):
        graph, _ = workload
        network = run_pipeline_until(graph, SAMPLE, EPS, 6)
        finder = CentralizedNearCliqueFinder(graph, EPS)
        components = finder.sample_components(SAMPLE)
        inner = 2 * EPS * EPS
        for members in components:
            for ctx in network.contexts.values():
                memberships = ctx.state.get(phases.KEY_K_MEMBERSHIP, {})
                indices = memberships.get(members[0], set())
                for index, subset in near_clique.iter_nonempty_subsets(members):
                    expected = near_clique.meets_fraction(
                        len(set(graph[ctx.node_id]) & set(subset)), len(subset), inner
                    )
                    if ctx.node_id in SAMPLE or members[0] in ctx.state.get(
                        phases.KEY_ADJ_COMPONENTS, {}
                    ) or (ctx.node_id in set(members)):
                        if ctx.node_id in set(members) or set(graph[ctx.node_id]) & set(members):
                            assert (index in indices) == expected


class TestAggregationAndBroadcast:
    def test_root_k_sizes_match_oracle(self, workload):
        graph, _ = workload
        network = run_pipeline_until(graph, SAMPLE, EPS, 7)
        finder = CentralizedNearCliqueFinder(graph, EPS)
        for members in finder.sample_components(SAMPLE):
            analysis = finder.analyze_component(members)
            root_ctx = network.contexts[members[0]]
            sizes = root_ctx.state.get(phases.KEY_K_ROOT_SIZES) or {}
            for index, k_set in analysis.k_sets.items():
                assert sizes.get(index, 0) == len(k_set)

    def test_k_sizes_broadcast_reaches_audience(self, workload):
        graph, _ = workload
        network = run_pipeline_until(graph, SAMPLE, EPS, 8)
        finder = CentralizedNearCliqueFinder(graph, EPS)
        for members in finder.sample_components(SAMPLE):
            analysis = finder.analyze_component(members)
            nonzero = {i: len(k) for i, k in analysis.k_sets.items() if k}
            for node in analysis.audience:
                received = network.contexts[node].state.get(phases.KEY_K_SIZES, {})
                assert received.get(members[0], {}) == nonzero

    def test_root_t_sizes_and_best_match_oracle(self, workload):
        graph, _ = workload
        network = run_pipeline_until(graph, SAMPLE, EPS, 10)
        finder = CentralizedNearCliqueFinder(graph, EPS)
        for members in finder.sample_components(SAMPLE):
            analysis = finder.analyze_component(members)
            root_ctx = network.contexts[members[0]]
            best = root_ctx.state.get(phases.KEY_BEST)
            assert best == (analysis.best_index, analysis.best_size)

    def test_vote_phase_marks_survivors_like_oracle(self, workload):
        graph, _ = workload
        network = run_pipeline_until(graph, SAMPLE, EPS, 13)
        finder = CentralizedNearCliqueFinder(graph, EPS)
        analyses = [
            finder.analyze_component(members)
            for members in finder.sample_components(SAMPLE)
        ]
        survived, _ = finder.decide(analyses)
        for analysis in analyses:
            root_ctx = network.contexts[analysis.root]
            assert bool(root_ctx.state.get(phases.KEY_SURVIVED)) == survived[analysis.root]


class TestVoteChoiceRule:
    def test_choice_prefers_larger_size_then_larger_root(self):
        best_known = {3: (1, 10), 9: (2, 10), 5: (1, 12)}
        assert phases.VotePhase._choice(best_known) == 5
        best_known = {3: (1, 10), 9: (2, 10)}
        assert phases.VotePhase._choice(best_known) == 9


class TestSelectBestSubset:
    def test_ties_break_to_smallest_index(self):
        class FakeCtx:
            state = {phases.KEY_COMP_MEMBERS: (1, 2)}
            globals = {}

        ctx = FakeCtx()
        phases.select_best_subset(ctx, {1: 4, 2: 4, 3: 4})
        assert ctx.state[phases.KEY_BEST] == (1, 4)

    def test_missing_counters_treated_as_zero(self):
        class FakeCtx:
            state = {phases.KEY_COMP_MEMBERS: (1, 2, 3)}
            globals = {}

        ctx = FakeCtx()
        phases.select_best_subset(ctx, {5: 2})
        assert ctx.state[phases.KEY_BEST] == (5, 2)
