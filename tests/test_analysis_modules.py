"""Tests for the theory bounds, statistics helpers, tables and experiment harness."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.analysis import experiment, stats, tables, theory
from repro.core.result import NearCliqueResult
from repro.graphs import generators


class TestTheoremBounds:
    def test_bounds_object(self):
        bounds = theory.TheoremBounds(
            epsilon=0.1, delta=0.5, n=400, sample_probability=0.02, planted_size=200
        )
        # For |D| = 200 the size bound (70 - 100) is negative, hence clipped.
        assert bounds.output_size_bound == 0.0
        assert bounds.output_defect_bound == pytest.approx((0.1 / 0.5) / 0.35)
        assert bounds.round_bound == pytest.approx(2 ** 16)
        large = theory.TheoremBounds(
            epsilon=0.1, delta=0.5, n=2000, sample_probability=0.005, planted_size=1000
        )
        assert large.output_size_bound == pytest.approx(0.35 * 1000 - 100)

    def test_success_probability_monotone_in_pn(self):
        low = theory.TheoremBounds(0.2, 0.5, 100, 0.05, 50)
        high = theory.TheoremBounds(0.2, 0.5, 100, 0.5, 50)
        assert high.success_probability_lower_bound(
            constant=500
        ) >= low.success_probability_lower_bound(constant=500)

    def test_success_probability_clipped(self):
        bounds = theory.TheoremBounds(0.2, 0.5, 10, 0.01, 5)
        value = bounds.success_probability_lower_bound()
        assert 0.0 <= value <= 1.0

    def test_theorem_2_1_probability_shape(self):
        p_small_eps = theory.theorem_2_1_sample_probability(10 ** 6, 0.1, 0.5)
        p_large_eps = theory.theorem_2_1_sample_probability(10 ** 6, 0.3, 0.5)
        assert p_small_eps > p_large_eps


class TestLemmaBounds:
    def test_lemma_5_1_monotone_in_sample(self):
        assert theory.lemma_5_1_round_bound(8) > theory.lemma_5_1_round_bound(4)

    def test_lemma_5_2_tail_decreases_with_pn(self):
        assert theory.lemma_5_2_sample_tail(100, 0.2) < theory.lemma_5_2_sample_tail(
            100, 0.05
        )

    def test_lemma_5_3_and_5_4_delegate(self):
        assert theory.lemma_5_3_defect_bound(100, 50, 0.1) == pytest.approx(0.2)
        assert theory.lemma_5_4_core_bound(100, 0.2) == pytest.approx(55.0)


class TestCorollaries:
    def test_corollary_2_2_independent_of_n(self):
        value = theory.corollary_2_2_round_prediction(0.25, 0.5)
        assert value > 1.0  # it is a bound on rounds, not a probability

    def test_corollary_2_3_clique_size_sublinear_but_large(self):
        n = 10 ** 4
        size = theory.corollary_2_3_clique_size(n, alpha=0.5)
        assert 0.1 * n < size < n

    def test_corollary_2_3_epsilon_shrinks_with_n(self):
        assert theory.corollary_2_3_epsilon(10 ** 8) <= theory.corollary_2_3_epsilon(100)

    def test_corollary_2_3_small_n(self):
        assert theory.corollary_2_3_clique_size(2, 0.5) == 2


class TestBoostingAndClaimHelpers:
    def test_boosting_repetitions_matches_formula(self):
        assert theory.boosting_repetitions(0.01, 0.5) == 7
        assert theory.boosted_failure_probability(0.5, 7) == pytest.approx(0.5 ** 7)

    def test_claim_1_thresholds(self):
        # min{(1-δ)/(1+δ), 1/9} = 1/9 for δ = 0.5.
        assert theory.claim_1_epsilon_threshold(0.5) == pytest.approx(1.0 / 9.0)
        assert theory.claim_1_epsilon_threshold(0.95) == pytest.approx(1.0 / 39.0)
        assert theory.claim_1_case1_density(0.5) == pytest.approx(2.0 / 3.0)
        assert theory.claim_1_required_size(100, 0.5, 0.1) == pytest.approx(45.0)


class TestStats:
    def test_mean_std_quantile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert stats.mean(values) == 2.5
        assert stats.std(values) == pytest.approx(math.sqrt(1.25))
        assert stats.quantile(values, 0.5) == 2.5
        assert stats.quantile([], 0.5) == 0.0
        assert stats.mean([]) == 0.0
        assert stats.std([7.0]) == 0.0

    def test_geometric_mean(self):
        assert stats.geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert stats.geometric_mean([1.0, 0.0]) == 0.0
        assert stats.geometric_mean([]) == 0.0

    def test_wilson_interval_contains_point_estimate(self):
        interval = stats.wilson_interval(7, 10)
        assert interval.lower <= interval.rate <= interval.upper
        assert 0.0 <= interval.lower and interval.upper <= 1.0

    def test_wilson_interval_zero_trials(self):
        interval = stats.wilson_interval(0, 0)
        assert (interval.lower, interval.upper) == (0.0, 1.0)

    def test_wilson_interval_validation(self):
        with pytest.raises(ValueError):
            stats.wilson_interval(5, 3)

    def test_success_rate_from_bools(self):
        rate = stats.success_rate([True, True, False, True])
        assert rate.successes == 3 and rate.trials == 4

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=200))
    def test_wilson_interval_always_valid(self, a, b):
        successes, trials = min(a, b), max(a, b)
        interval = stats.wilson_interval(successes, trials)
        assert 0.0 <= interval.lower <= interval.upper <= 1.0

    def test_linear_regression_slope(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [2.0, 4.0, 6.0, 8.0]
        assert stats.linear_regression_slope(xs, ys) == pytest.approx(2.0)
        assert stats.linear_regression_slope([1.0], [2.0]) == 0.0
        assert stats.linear_regression_slope([1.0, 1.0], [2.0, 3.0]) == 0.0

    def test_pearson_correlation(self):
        xs = [1.0, 2.0, 3.0]
        assert stats.pearson_correlation(xs, [2.0, 4.0, 6.0]) == pytest.approx(1.0)
        assert stats.pearson_correlation(xs, [6.0, 4.0, 2.0]) == pytest.approx(-1.0)
        assert stats.pearson_correlation(xs, [1.0, 1.0, 1.0]) == 0.0


class TestTables:
    def test_render_table_alignment(self):
        text = tables.render_table(["name", "value"], [["a", 1], ["bb", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]

    def test_render_table_title_and_mismatch(self):
        text = tables.render_table(["x"], [[1]], title="T")
        assert text.startswith("T")
        with pytest.raises(ValueError):
            tables.render_table(["x"], [[1, 2]])

    def test_format_value(self):
        assert tables.format_value(True) == "yes"
        assert tables.format_value(0.0) == "0"
        assert tables.format_value(0.00001) == "1e-05"
        assert tables.format_value("abc") == "abc"

    def test_markdown_table(self):
        text = tables.markdown_table(["a"], [[1], [2]])
        assert text.splitlines()[0] == "| a |"
        assert len(text.splitlines()) == 4

    def test_print_table_returns_text(self, capsys):
        text = tables.print_table(["a"], [[1]])
        captured = capsys.readouterr()
        assert "a" in captured.out
        assert "a" in text


class TestExperimentHarness:
    def test_run_planted_trials_centralized(self):
        aggregate = experiment.run_planted_trials(
            n=50, epsilon=0.2, delta=0.5, trials=4, seed=3
        )
        assert aggregate.trials == 4
        assert 0.0 <= aggregate.success.rate <= 1.0
        assert aggregate.mean_of("recall") > 0.5

    def test_run_planted_trials_distributed_records_rounds(self):
        aggregate = experiment.run_planted_trials(
            n=40,
            epsilon=0.2,
            delta=0.5,
            trials=2,
            seed=4,
            engine="distributed",
            expected_sample=5.0,
        )
        assert aggregate.mean_of("rounds") > 0
        assert aggregate.max_of("max_message_bits") > 0

    def test_run_planted_trials_boosted(self):
        aggregate = experiment.run_planted_trials(
            n=40,
            epsilon=0.2,
            delta=0.5,
            trials=2,
            seed=5,
            engine="boosted",
            boosting_repetitions=2,
        )
        assert aggregate.trials == 2

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            experiment.run_planted_trials(
                n=30, epsilon=0.2, delta=0.5, trials=1, engine="quantum"
            )

    def test_run_on_graph(self):
        graph, planted = generators.planted_near_clique(40, 0.5, 0.0, 0.05, seed=2)
        aggregate = experiment.run_on_graph(
            graph, planted.members, epsilon=0.2, delta=0.5, trials=3, seed=1
        )
        assert aggregate.trials == 3

    def test_injected_rng_matches_equivalent_seed(self):
        # rng=random.Random(s) must reproduce seed=s exactly: the injectable
        # source is a strict generalisation, not a second code path.
        kwargs = dict(n=40, epsilon=0.2, delta=0.5, trials=3)
        seeded = experiment.run_planted_trials(seed=7, **kwargs)
        injected = experiment.run_planted_trials(rng=random.Random(7), **kwargs)
        assert injected.outcomes == seeded.outcomes

    def test_injected_rng_overrides_seed(self):
        kwargs = dict(n=40, epsilon=0.2, delta=0.5, trials=3)
        baseline = experiment.run_planted_trials(seed=7, **kwargs)
        overridden = experiment.run_planted_trials(
            seed=999, rng=random.Random(7), **kwargs
        )
        assert overridden.outcomes == baseline.outcomes

    def test_injected_rng_run_on_graph(self):
        graph, planted = generators.planted_near_clique(40, 0.5, 0.0, 0.05, seed=2)
        kwargs = dict(
            graph=graph, planted=planted.members, epsilon=0.2, delta=0.5, trials=2
        )
        seeded = experiment.run_on_graph(seed=11, **kwargs)
        injected = experiment.run_on_graph(rng=random.Random(11), **kwargs)
        assert injected.outcomes == seeded.outcomes

    def test_shared_rng_advances_across_calls(self):
        # One master source shared by consecutive runs yields different
        # (but deterministic) trials — the stream is consumed, not reset.
        kwargs = dict(n=40, epsilon=0.2, delta=0.5, trials=2)
        shared = random.Random(13)
        first = experiment.run_planted_trials(rng=shared, **kwargs)
        second = experiment.run_planted_trials(rng=shared, **kwargs)
        replay = random.Random(13)
        assert experiment.run_planted_trials(rng=replay, **kwargs).outcomes == (
            first.outcomes
        )
        assert experiment.run_planted_trials(rng=replay, **kwargs).outcomes == (
            second.outcomes
        )

    def test_sweep_pairs_points_with_results(self):
        points = [
            {"n": 30, "epsilon": 0.2, "delta": 0.5, "trials": 1, "seed": 1},
            {"n": 40, "epsilon": 0.2, "delta": 0.5, "trials": 1, "seed": 2},
        ]
        results = experiment.sweep(points, experiment.run_planted_trials)
        assert len(results) == 2
        assert results[0][0]["n"] == 30

    def test_theorem_success_fallback_criterion(self):
        graph, planted = generators.planted_near_clique(40, 0.5, 0.0, 0.02, seed=6)
        labels = {v: (0 if v in planted.members else None) for v in graph.nodes()}
        result = NearCliqueResult(labels=labels, epsilon=0.2)
        assert experiment.theorem_success(result, graph, planted.members, delta=0.5)
        empty = NearCliqueResult(labels={v: None for v in graph.nodes()}, epsilon=0.2)
        assert not experiment.theorem_success(empty, graph, planted.members, delta=0.5)

    def test_aggregate_helpers(self):
        aggregate = experiment.TrialAggregate(
            outcomes=[
                experiment.TrialOutcome(
                    success=True,
                    recall=1.0,
                    output_size=10,
                    output_defect=0.0,
                    sample_size=3,
                    aborted=False,
                    rounds=5,
                ),
                experiment.TrialOutcome(
                    success=False,
                    recall=0.0,
                    output_size=0,
                    output_defect=1.0,
                    sample_size=20,
                    aborted=True,
                    rounds=1,
                ),
            ]
        )
        assert aggregate.success.successes == 1
        assert aggregate.abort_rate == 0.5
        assert aggregate.mean_of("rounds") == 3.0
        assert aggregate.max_of("sample_size") == 20.0
        assert aggregate.quantile_of("rounds", 1.0) == 5.0
