"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.congest.config import CongestConfig
from repro.congest.network import Network
from repro.graphs import generators


@pytest.fixture
def rng():
    """A deterministic random source for tests."""
    return random.Random(12345)


@pytest.fixture
def path_graph():
    """A 6-node path 0-1-2-3-4-5."""
    return nx.path_graph(6)


@pytest.fixture
def star_graph():
    """A star with centre 0 and leaves 1..6."""
    return nx.star_graph(6)


@pytest.fixture
def two_triangles():
    """Two disjoint triangles: {0,1,2} and {10,11,12}."""
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (1, 2), (0, 2), (10, 11), (11, 12), (10, 12)])
    return graph


@pytest.fixture
def small_clique_graph():
    """A 5-clique on 0..4 plus a pendant path 4-5-6."""
    graph = nx.complete_graph(5)
    graph.add_edges_from([(4, 5), (5, 6)])
    return graph


@pytest.fixture
def planted_workload():
    """A 60-node graph with a planted 0.008-near clique on half the nodes."""
    graph, planted = generators.planted_near_clique(
        n=60, clique_fraction=0.5, epsilon=0.2 ** 3, background_p=0.05, seed=7
    )
    return graph, planted


@pytest.fixture
def counterexample_workload():
    """The Claim 1 / Figure 1 graph with delta = 0.5 and 60 nodes."""
    return generators.shingles_counterexample(n=60, delta=0.5)


@pytest.fixture
def congest_config():
    """Default strict CONGEST configuration for a 64-node system."""
    return CongestConfig().with_log_budget(64)


def make_network(graph: nx.Graph, seed: int = 1) -> Network:
    """Helper used by several test modules to build a seeded network."""
    return Network(graph, seed=seed)
