"""Tests for the property-testing module (oracle, GGR tester, tolerant tester)."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core import near_clique
from repro.graphs import generators
from repro.proptest.ggr_tester import GGRCliqueTester
from repro.proptest.sampling import AdjacencyOracle
from repro.proptest.tolerant import (
    TolerantNearCliqueTester,
    ggr_tolerance_of,
    paper_tolerance_of,
)


class TestAdjacencyOracle:
    def test_query_counting_deduplicates(self):
        graph = nx.path_graph(4)
        oracle = AdjacencyOracle(graph)
        assert oracle.is_edge(0, 1)
        assert oracle.is_edge(1, 0)  # same unordered pair
        assert not oracle.is_edge(0, 3)
        assert oracle.queries == 2

    def test_self_loop_is_never_an_edge(self):
        oracle = AdjacencyOracle(nx.complete_graph(3))
        assert not oracle.is_edge(1, 1)

    def test_degree_into(self):
        graph = nx.star_graph(5)
        oracle = AdjacencyOracle(graph)
        assert oracle.degree_into(0, [1, 2, 3]) == 3
        assert oracle.degree_into(1, [2, 3]) == 0

    def test_sample_vertices_without_replacement(self):
        oracle = AdjacencyOracle(nx.complete_graph(10))
        sample = oracle.sample_vertices(5, random.Random(1))
        assert len(sample) == len(set(sample)) == 5

    def test_sample_vertices_with_replacement_allows_excess(self):
        oracle = AdjacencyOracle(nx.complete_graph(3))
        sample = oracle.sample_vertices(10, random.Random(1), replace=True)
        assert len(sample) == 10

    def test_exact_density_matches_definition(self):
        graph = nx.complete_graph(5)
        graph.remove_edge(0, 1)
        oracle = AdjacencyOracle(graph)
        assert oracle.exact_density(range(5)) == pytest.approx(
            near_clique.density(graph, range(5))
        )

    def test_pair_density_estimates_clique_as_one(self):
        oracle = AdjacencyOracle(nx.complete_graph(8))
        assert oracle.pair_density(range(8), random.Random(2), pairs=50) == 1.0

    def test_pair_density_of_single_vertex(self):
        oracle = AdjacencyOracle(nx.complete_graph(3))
        assert oracle.pair_density([0], random.Random(2), pairs=10) == 1.0


class TestGGRTester:
    def test_sample_sizes_grow_as_epsilon_shrinks(self):
        loose = GGRCliqueTester(rho=0.5, epsilon=0.4)
        tight = GGRCliqueTester(rho=0.5, epsilon=0.15)
        assert tight.sample_sizes(500)[1] >= loose.sample_sizes(500)[1]

    def test_sample_sizes_independent_of_n(self):
        tester = GGRCliqueTester(rho=0.5, epsilon=0.3)
        assert tester.sample_sizes(10 ** 4) == tester.sample_sizes(10 ** 6)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GGRCliqueTester(rho=0.0, epsilon=0.2)
        with pytest.raises(ValueError):
            GGRCliqueTester(rho=0.5, epsilon=1.0)

    def test_accepts_planted_clique(self):
        graph, _ = generators.planted_near_clique(80, 0.5, 0.0, 0.05, seed=2)
        accepts = 0
        for seed in range(6):
            tester = GGRCliqueTester(rho=0.45, epsilon=0.3, rng=random.Random(seed))
            accepts += tester.test(graph).accepted
        assert accepts >= 4

    def test_rejects_sparse_random_graph(self):
        graph = generators.erdos_renyi(80, 0.08, seed=3)
        rejects = 0
        for seed in range(6):
            tester = GGRCliqueTester(rho=0.45, epsilon=0.3, rng=random.Random(seed))
            rejects += not tester.test(graph).accepted
        assert rejects >= 5

    def test_query_count_is_sublinear_in_pairs(self):
        graph, _ = generators.planted_near_clique(120, 0.5, 0.0, 0.04, seed=5)
        tester = GGRCliqueTester(rho=0.45, epsilon=0.3, rng=random.Random(1))
        verdict = tester.test(graph)
        total_pairs = 120 * 119 // 2
        assert verdict.queries < total_pairs / 3

    def test_empty_graph_rejected(self):
        tester = GGRCliqueTester(rho=0.5, epsilon=0.3)
        assert not tester.test(nx.Graph()).accepted

    def test_approximate_find_returns_dense_set(self):
        graph, planted = generators.planted_near_clique(80, 0.5, 0.0, 0.05, seed=7)
        tester = GGRCliqueTester(rho=0.45, epsilon=0.25, rng=random.Random(3))
        verdict = tester.test(graph)
        if not verdict.accepted:
            pytest.skip("tester rejected on this seed; acceptance covered elsewhere")
        found = tester.approximate_find(graph, sorted(verdict.witness_subset))
        assert found.density >= 0.85
        assert len(found.members & planted.members) >= 0.7 * len(planted.members)

    def test_approximate_find_empty_witness(self):
        tester = GGRCliqueTester(rho=0.4, epsilon=0.3)
        found = tester.approximate_find(nx.complete_graph(5), [])
        assert found.members == frozenset()

    def test_majority_vote_wrapper(self):
        graph, _ = generators.planted_near_clique(70, 0.5, 0.0, 0.05, seed=9)
        tester = GGRCliqueTester(rho=0.45, epsilon=0.3, rng=random.Random(11))
        verdict = tester.test_with_confidence(graph, repetitions=3)
        assert verdict.accepted
        assert verdict.queries > 0


class TestTolerantTester:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TolerantNearCliqueTester(rho=0.5, epsilon_1=0.3, epsilon_2=0.2)
        with pytest.raises(ValueError):
            TolerantNearCliqueTester(rho=1.5, epsilon_1=0.1, epsilon_2=0.2)

    def test_tolerance_helpers(self):
        assert ggr_tolerance_of(0.3) == (pytest.approx(0.3 ** 6), 0.3)
        assert paper_tolerance_of(0.3) == (pytest.approx(0.027), 0.3)

    def test_gap_behaviour_on_planted_vs_null(self):
        planted_graph, _ = generators.planted_near_clique(70, 0.4, 0.027, 0.05, seed=2)
        null_graph = generators.erdos_renyi(70, 0.1, seed=5)
        planted_accepts = 0
        null_accepts = 0
        for seed in range(6):
            tester = TolerantNearCliqueTester(
                rho=0.4, epsilon_1=0.027, epsilon_2=0.3, rng=random.Random(seed)
            )
            planted_accepts += tester.test(planted_graph).accepted
            null_accepts += tester.test(null_graph).accepted
        assert planted_accepts >= 5
        assert null_accepts <= 1

    def test_confidence_wrapper_one_sided(self):
        graph, _ = generators.planted_near_clique(60, 0.4, 0.02, 0.05, seed=4)
        tester = TolerantNearCliqueTester(
            rho=0.4, epsilon_1=0.02, epsilon_2=0.3, rng=random.Random(1)
        )
        verdict = tester.test_with_confidence(graph, repetitions=4)
        assert verdict.accepted
        assert verdict.found_fraction > 0

    def test_empty_graph(self):
        tester = TolerantNearCliqueTester(rho=0.4, epsilon_1=0.01, epsilon_2=0.2)
        assert not tester.test(nx.Graph()).accepted

    @pytest.mark.parametrize("congest_engine", ["reference", "batched"])
    def test_find_distributed_runs_the_congest_algorithm(self, congest_engine):
        graph, _ = generators.planted_near_clique(60, 0.4, 0.02, 0.05, seed=4)
        tester = TolerantNearCliqueTester(
            rho=0.4,
            epsilon_1=0.02,
            epsilon_2=0.3,
            rng=random.Random(8),
            congest_engine=congest_engine,
        )
        result = tester.find_distributed(graph)
        assert set(result.labels) == set(graph.nodes())
        assert result.metrics is not None and result.metrics.rounds > 0

    def test_find_distributed_identical_across_engines(self):
        graph, _ = generators.planted_near_clique(60, 0.4, 0.02, 0.05, seed=4)
        results = {}
        for congest_engine in ("reference", "batched"):
            tester = TolerantNearCliqueTester(
                rho=0.4,
                epsilon_1=0.02,
                epsilon_2=0.3,
                rng=random.Random(8),
                congest_engine=congest_engine,
            )
            result = tester.find_distributed(graph)
            results[congest_engine] = (
                result.labels,
                result.sample,
                result.metrics.rounds,
                result.metrics.total_bits,
            )
        assert results["reference"] == results["batched"]
