"""Tests for the distributed primitives (BFS tree, convergecast, broadcast)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.config import CongestConfig
from repro.congest.network import Network
from repro.congest.scheduler import run_protocol
from repro.primitives.bfs_tree import (
    KEY_CHILDREN,
    KEY_PARTICIPANT,
    MinIdBFSTreeProtocol,
    ParentNotificationProtocol,
)
from repro.primitives.broadcast import (
    KEY_BROADCAST_OUTPUT,
    TreeBroadcastProtocol,
)
from repro.primitives.convergecast import (
    KEY_COLLECTED,
    KEY_LOCAL_COUNTERS,
    ConvergecastCollectProtocol,
    ConvergecastSumProtocol,
)
from repro.primitives.leader_election import MinIdFloodingProtocol
from repro.primitives.pipelines import Outbox, chunk_id_list
from repro.congest.node import NodeContext
from repro.congest.message import Message


def _participants(graph, nodes=None):
    chosen = set(graph.nodes()) if nodes is None else set(nodes)
    return {v: {KEY_PARTICIPANT: v in chosen} for v in graph.nodes()}


def _build_tree(network, per_node):
    run_protocol(network, MinIdBFSTreeProtocol(), per_node_inputs=per_node)
    run_protocol(network, ParentNotificationProtocol(), reuse_contexts=True)


class TestMinIdBFSTree:
    def test_single_component_root_is_min(self):
        graph = nx.gnp_random_graph(15, 0.3, seed=2)
        graph.add_edges_from(nx.path_graph(15).edges())  # ensure connectivity
        network = Network(graph, seed=1)
        result = run_protocol(
            network, MinIdBFSTreeProtocol(), per_node_inputs=_participants(graph)
        )
        assert all(out.root == 0 for out in result.outputs.values())

    def test_depth_matches_bfs_distance(self):
        graph = nx.path_graph(7)
        network = Network(graph, seed=1)
        result = run_protocol(
            network, MinIdBFSTreeProtocol(), per_node_inputs=_participants(graph)
        )
        for node, out in result.outputs.items():
            assert out.depth == node  # distance from node 0 on a path

    def test_parent_is_neighbor_and_closer_to_root(self):
        graph = nx.gnp_random_graph(20, 0.25, seed=5)
        graph.add_edges_from(nx.cycle_graph(20).edges())
        network = Network(graph, seed=1)
        result = run_protocol(
            network, MinIdBFSTreeProtocol(), per_node_inputs=_participants(graph)
        )
        for node, out in result.outputs.items():
            if out.parent is None:
                assert out.depth == 0
                assert node == out.root
            else:
                assert graph.has_edge(node, out.parent)
                assert result.outputs[out.parent].depth == out.depth - 1

    def test_multiple_components_get_distinct_roots(self, two_triangles):
        network = Network(two_triangles, seed=1)
        result = run_protocol(
            network,
            MinIdBFSTreeProtocol(),
            per_node_inputs=_participants(two_triangles),
        )
        assert {result.outputs[v].root for v in (0, 1, 2)} == {0}
        assert {result.outputs[v].root for v in (10, 11, 12)} == {10}

    def test_non_participants_excluded(self):
        graph = nx.path_graph(5)
        network = Network(graph, seed=1)
        # Node 2 does not participate: 0-1 and 3-4 become separate components.
        per_node = _participants(graph, nodes={0, 1, 3, 4})
        result = run_protocol(network, MinIdBFSTreeProtocol(), per_node_inputs=per_node)
        assert result.outputs[2] is None
        assert result.outputs[0].root == 0 and result.outputs[1].root == 0
        assert result.outputs[3].root == 3 and result.outputs[4].root == 3

    def test_isolated_participant_is_its_own_root(self):
        graph = nx.path_graph(3)
        per_node = _participants(graph, nodes={2})
        result = run_protocol(
            Network(graph, seed=1), MinIdBFSTreeProtocol(), per_node_inputs=per_node
        )
        assert result.outputs[2].root == 2
        assert result.outputs[2].parent is None

    def test_messages_respect_log_budget(self):
        graph = nx.gnp_random_graph(40, 0.15, seed=3)
        config = CongestConfig().with_log_budget(40)
        result = run_protocol(
            Network(graph, seed=2),
            MinIdBFSTreeProtocol(),
            config=config,
            per_node_inputs=_participants(graph),
        )
        assert result.metrics.max_message_bits <= config.message_bit_budget


class TestParentNotification:
    def test_children_are_consistent_with_parents(self):
        graph = nx.gnp_random_graph(18, 0.3, seed=7)
        graph.add_edges_from(nx.path_graph(18).edges())
        network = Network(graph, seed=1)
        per_node = _participants(graph)
        tree = run_protocol(network, MinIdBFSTreeProtocol(), per_node_inputs=per_node)
        children = run_protocol(
            network, ParentNotificationProtocol(), reuse_contexts=True
        )
        for node, kids in children.outputs.items():
            for child in kids:
                assert tree.outputs[child].parent == node

    def test_child_counts_sum_to_non_roots(self):
        graph = nx.cycle_graph(11)
        network = Network(graph, seed=1)
        per_node = _participants(graph)
        run_protocol(network, MinIdBFSTreeProtocol(), per_node_inputs=per_node)
        children = run_protocol(
            network, ParentNotificationProtocol(), reuse_contexts=True
        )
        total_children = sum(len(kids) for kids in children.outputs.values())
        assert total_children == graph.number_of_nodes() - 1  # one root


class TestConvergecastCollect:
    def test_root_learns_whole_component(self):
        graph = nx.gnp_random_graph(16, 0.3, seed=9)
        graph.add_edges_from(nx.path_graph(16).edges())
        network = Network(graph, seed=1)
        per_node = _participants(graph)
        _build_tree(network, per_node)
        collected = run_protocol(
            network, ConvergecastCollectProtocol(), reuse_contexts=True
        )
        assert collected.outputs[0] == sorted(graph.nodes())
        assert all(
            value is None for node, value in collected.outputs.items() if node != 0
        )

    def test_two_components_collect_separately(self, two_triangles):
        network = Network(two_triangles, seed=1)
        per_node = _participants(two_triangles)
        _build_tree(network, per_node)
        collected = run_protocol(
            network, ConvergecastCollectProtocol(), reuse_contexts=True
        )
        assert collected.outputs[0] == [0, 1, 2]
        assert collected.outputs[10] == [10, 11, 12]

    def test_partial_participation(self):
        graph = nx.complete_graph(8)
        network = Network(graph, seed=1)
        per_node = _participants(graph, nodes={1, 3, 5})
        _build_tree(network, per_node)
        collected = run_protocol(
            network, ConvergecastCollectProtocol(), reuse_contexts=True
        )
        assert collected.outputs[1] == [1, 3, 5]


class TestConvergecastSum:
    def test_sums_per_key(self):
        graph = nx.path_graph(6)
        network = Network(graph, seed=1)
        per_node = _participants(graph)
        _build_tree(network, per_node)
        counters = {
            v: {KEY_LOCAL_COUNTERS: {1: 1, 2: v}} for v in graph.nodes()
        }
        network.build_contexts(per_node_inputs=counters, fresh=False)
        sums = run_protocol(network, ConvergecastSumProtocol(), reuse_contexts=True)
        assert sums.outputs[0] == {1: 6, 2: sum(range(6))}

    def test_missing_counters_treated_as_empty(self):
        graph = nx.path_graph(4)
        network = Network(graph, seed=1)
        per_node = _participants(graph)
        _build_tree(network, per_node)
        counters = {0: {KEY_LOCAL_COUNTERS: {7: 2}}}
        network.build_contexts(per_node_inputs=counters, fresh=False)
        sums = run_protocol(network, ConvergecastSumProtocol(), reuse_contexts=True)
        assert sums.outputs[0] == {7: 2}

    def test_star_topology(self):
        graph = nx.star_graph(9)
        network = Network(graph, seed=1)
        per_node = _participants(graph)
        _build_tree(network, per_node)
        counters = {v: {KEY_LOCAL_COUNTERS: {5: 1}} for v in graph.nodes()}
        network.build_contexts(per_node_inputs=counters, fresh=False)
        sums = run_protocol(network, ConvergecastSumProtocol(), reuse_contexts=True)
        assert sums.outputs[0] == {5: 10}


class TestTreeBroadcast:
    def test_everyone_receives_root_items(self):
        graph = nx.gnp_random_graph(14, 0.3, seed=13)
        graph.add_edges_from(nx.path_graph(14).edges())
        network = Network(graph, seed=1)
        per_node = _participants(graph)
        _build_tree(network, per_node)
        collected = run_protocol(
            network, ConvergecastCollectProtocol(), reuse_contexts=True
        )
        broadcast = run_protocol(
            network,
            TreeBroadcastProtocol(input_key=KEY_COLLECTED, output_key=KEY_BROADCAST_OUTPUT),
            reuse_contexts=True,
        )
        expected = collected.outputs[0]
        assert all(out == expected for out in broadcast.outputs.values())

    def test_broadcast_of_tuples(self):
        graph = nx.path_graph(5)
        network = Network(graph, seed=1)
        per_node = _participants(graph)
        _build_tree(network, per_node)
        network.build_contexts(
            per_node_inputs={0: {"payload": [(1, 2), (3, 4)]}}, fresh=False
        )
        broadcast = run_protocol(
            network,
            TreeBroadcastProtocol(input_key="payload", output_key="received"),
            reuse_contexts=True,
        )
        assert broadcast.outputs[4] == [(1, 2), (3, 4)]

    def test_pipelined_round_complexity(self):
        # Broadcasting m items over a path of length h takes O(m + h) rounds,
        # not O(m * h): check the pipelining actually happens.
        graph = nx.path_graph(10)
        network = Network(graph, seed=1)
        per_node = _participants(graph)
        _build_tree(network, per_node)
        items = list(range(30))
        network.build_contexts(per_node_inputs={0: {"payload": items}}, fresh=False)
        broadcast = run_protocol(
            network,
            TreeBroadcastProtocol(input_key="payload", output_key="received"),
            reuse_contexts=True,
        )
        assert broadcast.outputs[9] == items
        assert broadcast.metrics.rounds <= len(items) + 12


class TestLeaderElection:
    def test_elects_minimum(self):
        graph = nx.cycle_graph(12)
        result = run_protocol(
            Network(graph, seed=1),
            MinIdFloodingProtocol(),
            per_node_inputs=_participants(graph),
        )
        assert set(result.outputs.values()) == {0}

    def test_per_component_leaders(self, two_triangles):
        result = run_protocol(
            Network(two_triangles, seed=1),
            MinIdFloodingProtocol(),
            per_node_inputs=_participants(two_triangles),
        )
        assert result.outputs[2] == 0
        assert result.outputs[12] == 10

    def test_non_participants_output_none(self):
        graph = nx.path_graph(4)
        result = run_protocol(
            Network(graph, seed=1),
            MinIdFloodingProtocol(),
            per_node_inputs=_participants(graph, nodes={1, 2}),
        )
        assert result.outputs[0] is None
        assert result.outputs[1] == 1


class TestOutbox:
    def _ctx(self):
        return NodeContext(node_id=0, neighbors=[1, 2], n=3)

    def test_fifo_per_neighbor(self):
        ctx = self._ctx()
        outbox = Outbox.for_ctx(ctx)
        outbox.push(1, Message(kind="a", payload=(1,)))
        outbox.push(1, Message(kind="b", payload=(2,)))
        outbox.push(2, Message(kind="c", payload=(3,)))
        sent = outbox.flush()
        assert sent == 2
        queued = ctx._collect_outgoing()
        assert queued[1][0].kind == "a"
        assert queued[2][0].kind == "c"
        assert outbox.pending_for(1) == 1
        assert outbox.pending()

    def test_push_all_excludes(self):
        ctx = self._ctx()
        outbox = Outbox.for_ctx(ctx)
        outbox.push_all(Message(kind="x", payload=None), exclude=[2])
        assert outbox.pending_for(1) == 1
        assert outbox.pending_for(2) == 0

    def test_for_ctx_is_singleton(self):
        ctx = self._ctx()
        assert Outbox.for_ctx(ctx) is Outbox.for_ctx(ctx)

    def test_total_pending(self):
        ctx = self._ctx()
        outbox = Outbox.for_ctx(ctx)
        outbox.push_many(1, [Message(kind="a", payload=None)] * 3)
        assert outbox.total_pending() == 3

    def test_chunk_id_list_sorts_and_dedups(self):
        assert chunk_id_list([5, 1, 5, 3]) == (1, 3, 5)
