"""Seeded randomized property tests for the execution-engine invariants.

Complementing the differential suite (which checks reference == batched),
these tests check that *both* engines uphold the simulator's model
guarantees on randomized workloads driven by stdlib ``random``:

* one message per edge direction per round (and violations raise);
* the per-message bit budget is enforced, never merely measured;
* the batched engine's active-frontier skipping never starves a node: a
  message sent to a node that has not halted is delivered exactly once, in
  the next round, no matter how long the node has been silent;
* the ``_STALL_LIMIT`` quiesce path: a protocol that is silent for exactly
  ``_STALL_LIMIT - 1`` rounds and then resumes is not declared stalled;
* the async arm: under every link-delay distribution, the asynchronous
  engine's outputs and protocol metrics are identical to the synchronous
  ones — delays may only move the simulated completion time.

All engine-parametrized tests below automatically include ``"async"``
because they iterate :func:`repro.congest.engine.available_engines`.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.congest.config import CongestConfig
from repro.congest.engine import available_engines
from repro.congest.errors import (
    CongestionViolation,
    MessageSizeViolation,
    ProtocolError,
)
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Protocol
from repro.congest.scheduler import _STALL_LIMIT, run_protocol
from repro.congest.synchronizer import AsyncEngine

ENGINES = available_engines()


class RandomTrafficProtocol(Protocol):
    """Random gossip with per-node random halt rounds, fully instrumented.

    Every active node sends one message to a random non-empty subset of its
    neighbours each round and logs every send and every receive on the
    protocol instance.  Node v halts at the end of round ``halt_round[v]``.
    The logs let the tests replay the delivery discipline after the fact.
    """

    name = "random-traffic"

    def __init__(self, seed: int, max_halt_round: int = 8) -> None:
        rng = random.Random(seed)
        self._traffic_seed = rng.getrandbits(32)
        self.max_halt_round = max_halt_round
        self.halt_round = {}
        self.sent = []  # (round sent, sender, receiver, payload)
        self.received = []  # (round received, receiver, sender, payload)
        self.invocations = []  # (round, node, inbox size)

    def _rng_for(self, ctx):
        key = "_traffic_rng"
        if key not in ctx.state:
            ctx.state[key] = random.Random(self._traffic_seed ^ (ctx.node_id * 7919))
        return ctx.state[key]

    def on_start(self, ctx):
        rng = self._rng_for(ctx)
        self.halt_round[ctx.node_id] = rng.randint(1, self.max_halt_round)
        self._gossip(ctx, round_index=0)

    def _gossip(self, ctx, round_index):
        if not ctx.neighbors:
            return
        rng = self._rng_for(ctx)
        count = rng.randint(1, len(ctx.neighbors))
        for neighbor in sorted(rng.sample(list(ctx.neighbors), count)):
            payload = (ctx.node_id, round_index, rng.randint(0, 1000))
            ctx.send(neighbor, Message(kind="gossip", payload=payload))
            self.sent.append((round_index, ctx.node_id, neighbor, payload))

    def on_round(self, ctx, inbox):
        self.invocations.append((ctx.round_index, ctx.node_id, len(inbox)))
        for inbound in inbox:
            self.received.append(
                (ctx.round_index, ctx.node_id, inbound.sender, inbound.payload)
            )
        if ctx.round_index >= self.halt_round[ctx.node_id]:
            ctx.halt()
            return
        self._gossip(ctx, ctx.round_index)


def _run_random_traffic(engine, seed, n=18, p=0.3):
    graph = nx.gnp_random_graph(n, p, seed=seed)
    graph.add_edges_from(nx.path_graph(n).edges())  # no isolated nodes
    protocol = RandomTrafficProtocol(seed=seed * 31 + 7)
    network = Network(graph, seed=seed)
    config = CongestConfig(engine=engine).with_log_budget(n)
    result = run_protocol(network, protocol, config=config)
    return protocol, result


class TestOneMessagePerEdgePerRound:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_edge_carries_two_messages_one_way(self, engine, seed):
        protocol, result = _run_random_traffic(engine, seed)
        per_round_pairs = {}
        for round_sent, sender, receiver, _ in protocol.sent:
            pairs = per_round_pairs.setdefault(round_sent, set())
            assert (sender, receiver) not in pairs
            pairs.add((sender, receiver))
        # With congestion enforcement, the per-round metrics agree: every
        # message used a distinct directed edge.  (Round 1's messages_sent
        # additionally folds in the on_start traffic, per the accounting
        # convention, so subtract it before comparing.)
        startup_messages = sum(1 for round_sent, _, _, _ in protocol.sent if round_sent == 0)
        for rm in result.metrics.per_round:
            expected = rm.messages_sent - (startup_messages if rm.round_index == 1 else 0)
            assert rm.edges_used == expected

    @pytest.mark.parametrize("engine", ENGINES)
    def test_double_send_raises(self, engine):
        class DoubleSender(Protocol):
            def on_start(self, ctx):
                if ctx.neighbors:
                    target = ctx.neighbors[0]
                    ctx.send(target, Message(kind="a", payload=(1,)))
                    ctx.send(target, Message(kind="b", payload=(2,)))

        config = CongestConfig(engine=engine)
        with pytest.raises(CongestionViolation):
            run_protocol(Network(nx.path_graph(4)), DoubleSender(), config=config)


class TestBitBudgetEnforced:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", [3, 4])
    def test_within_budget_traffic_is_bounded(self, engine, seed):
        _, result = _run_random_traffic(engine, seed)
        budget = CongestConfig().with_log_budget(18).message_bit_budget
        assert 0 < result.metrics.max_message_bits <= budget

    @pytest.mark.parametrize("engine", ENGINES)
    def test_oversized_message_raises(self, engine):
        class BigTalker(Protocol):
            def on_start(self, ctx):
                ctx.send_all(Message(kind="big", payload=None, bits=10 ** 6))

        config = CongestConfig(engine=engine).with_log_budget(6)
        with pytest.raises(MessageSizeViolation):
            run_protocol(Network(nx.path_graph(6)), BigTalker(), config=config)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_disabled_budget_allows_big_messages(self, engine):
        class BigTalker(Protocol):
            def on_start(self, ctx):
                ctx.send_all(Message(kind="big", payload=None, bits=10 ** 6))

            def on_round(self, ctx, inbox):
                ctx.halt()

        config = CongestConfig(engine=engine, message_bit_budget=None)
        result = run_protocol(Network(nx.path_graph(6)), BigTalker(), config=config)
        assert result.metrics.max_message_bits == 10 ** 6


class TestFrontierNeverStarves:
    """Every message to a not-yet-halted node is delivered, exactly once,
    exactly one round after it was sent — the frontier may only drop mail
    addressed to halted nodes."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_delivery_is_exact(self, engine, seed):
        protocol, _ = _run_random_traffic(engine, seed)
        received = {}
        for round_received, receiver, sender, payload in protocol.received:
            key = (round_received, receiver, sender, payload)
            received[key] = received.get(key, 0) + 1

        for round_sent, sender, receiver, payload in protocol.sent:
            key = (round_sent + 1, receiver, sender, payload)
            # halt_round is the round in whose processing the node halts, so
            # the node still processes mail arriving in that round.
            if round_sent + 1 <= protocol.halt_round[receiver]:
                assert received.pop(key, 0) == 1, (
                    "message %r starved under engine %r" % (key, engine)
                )
            else:
                assert key not in received
        # ... and nothing was delivered that was never sent.
        assert not received

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_active_node_invoked_every_round(self, engine, seed):
        protocol, result = _run_random_traffic(engine, seed)
        invoked = {}
        for round_index, node, _ in protocol.invocations:
            invoked.setdefault(node, set()).add(round_index)
        for node, halt_round in protocol.halt_round.items():
            expected = set(range(1, min(halt_round, result.metrics.rounds) + 1))
            assert expected <= invoked.get(node, set())


class TestAsyncDelayIndependence:
    """Randomized async-vs-sync equivalence over graphs, seeds and delays.

    The alpha synchronizer's guarantee is that the asynchronous execution
    computes exactly what the synchronous one does, for *any* link-delay
    distribution.  Each case runs the random-traffic workload on a seeded
    random graph under the reference engine and under async engines with
    very different delay regimes (tight jitter, constant delays, a 500×
    spread), and asserts identical outputs, delivery logs, and per-round
    protocol metrics.
    """

    DELAY_REGIMES = [
        ("jitter", 0.05, 1.0),
        ("constant", 0.5, 0.5),
        ("wide", 0.01, 5.0),
    ]

    def _fingerprint(self, protocol, result):
        return (
            result.outputs,
            sorted(protocol.sent),
            sorted(protocol.received),
            result.metrics.rounds,
            result.metrics.total_messages,
            result.metrics.total_bits,
            [
                (r.round_index, r.messages_sent, r.bits_sent, r.edges_used,
                 r.active_nodes)
                for r in result.metrics.per_round
            ],
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize(
        "regime", DELAY_REGIMES, ids=[name for name, _, _ in DELAY_REGIMES]
    )
    def test_outputs_invariant_under_delay_distribution(self, seed, regime):
        _, min_delay, max_delay = regime
        protocol, reference = _run_random_traffic("reference", seed)
        expected = self._fingerprint(protocol, reference)
        for delay_seed in (0, 7):
            engine = AsyncEngine(
                delay_seed=delay_seed, min_delay=min_delay, max_delay=max_delay
            )
            graph = nx.gnp_random_graph(18, 0.3, seed=seed)
            graph.add_edges_from(nx.path_graph(18).edges())
            async_protocol = RandomTrafficProtocol(seed=seed * 31 + 7)
            network = Network(graph, seed=seed)
            config = CongestConfig().with_log_budget(18)
            result = run_protocol(network, async_protocol, config=config, engine=engine)
            assert self._fingerprint(async_protocol, result) == expected, (
                "async run diverged under delays [%r, %r] (delay_seed=%d)"
                % (min_delay, max_delay, delay_seed)
            )
            assert result.completion_time > 0

    @pytest.mark.parametrize("seed", [0, 1])
    def test_control_overhead_depends_on_delays_not_protocol(self, seed):
        """Delay regimes reorder events but never change the overhead counts:
        one ack per payload message, one safety notification per edge
        direction per pulse, under every distribution."""
        overheads = set()
        for _, min_delay, max_delay in self.DELAY_REGIMES:
            engine = AsyncEngine(min_delay=min_delay, max_delay=max_delay)
            graph = nx.gnp_random_graph(14, 0.3, seed=seed)
            graph.add_edges_from(nx.path_graph(14).edges())
            network = Network(graph, seed=seed)
            config = CongestConfig().with_log_budget(14)
            result = run_protocol(
                network,
                RandomTrafficProtocol(seed=seed * 31 + 7),
                config=config,
                engine=engine,
            )
            overheads.add(
                (result.metrics.ack_messages, result.metrics.safety_messages)
            )
        assert len(overheads) == 1


class TestStallAndQuiesce:
    """Regression tests for the ``_STALL_LIMIT`` quiesce path."""

    class SilentThenResume(Protocol):
        """Node 1 receives a ping, stays silent for exactly two rounds, then
        replies — one short of ``_STALL_LIMIT``, so no engine may declare the
        protocol stalled."""

        name = "silent-then-resume"
        quiesce_terminates = False
        SILENT_ROUNDS = _STALL_LIMIT - 1

        def on_start(self, ctx):
            if ctx.node_id == 0:
                ctx.send(1, Message(kind="ping", payload=None))
                ctx.halt()
            elif ctx.node_id != 1:
                ctx.halt()

        def on_round(self, ctx, inbox):
            if any(inbound.kind == "ping" for inbound in inbox):
                ctx.state["ping_round"] = ctx.round_index
                return
            ping_round = ctx.state.get("ping_round")
            if ping_round is not None and ctx.round_index == ping_round + self.SILENT_ROUNDS:
                ctx.send(0, Message(kind="pong", payload=None))
                ctx.write_output("resumed")
                ctx.halt()

        def collect_output(self, ctx):
            return ctx.output

    @pytest.mark.parametrize("engine", ENGINES)
    def test_two_silent_rounds_then_resume_is_not_a_stall(self, engine):
        graph = nx.path_graph(3)
        config = CongestConfig(engine=engine)
        result = run_protocol(Network(graph, seed=1), self.SilentThenResume(), config=config)
        assert result.outputs[1] == "resumed"
        # ping round + (_STALL_LIMIT - 1) silent rounds + the resume round
        assert result.metrics.rounds == 1 + self.SilentThenResume.SILENT_ROUNDS + 1

    @pytest.mark.parametrize("engine", ENGINES)
    def test_full_silence_still_detected_as_stall(self, engine):
        class NeverTerminates(Protocol):
            def on_round(self, ctx, inbox):
                ctx.state["spin"] = ctx.state.get("spin", 0) + 1

        config = CongestConfig(engine=engine)
        with pytest.raises(ProtocolError, match="stalled"):
            run_protocol(Network(nx.path_graph(5)), NeverTerminates(), config=config)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_quiesce_terminates_skips_the_stall_counter(self, engine):
        class SilentQuiescer(Protocol):
            quiesce_terminates = True

            def on_start(self, ctx):
                ctx.send_all(Message(kind="one", payload=None))

            def on_round(self, ctx, inbox):
                ctx.write_output(len(inbox))

        config = CongestConfig(engine=engine)
        result = run_protocol(Network(nx.path_graph(4), seed=2), SilentQuiescer(), config=config)
        assert result.metrics.rounds >= 1
