"""Unit tests for the phase-graph pipeline compiler.

The differential suite holds ``pipeline_mode="fuse"`` to bit-identity
through real engines; this module covers the compiler itself — effect
declarations, dataflow validation, fusion planning, context snapshots and
the cross-run artifact cache — on synthetic phases, where every edge case
is cheap to construct.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.congest.network import Network
from repro.congest.node import NodeContext, Protocol
from repro.congest.pipeline import (
    ArtifactCache,
    CachedPrefix,
    PhaseEffects,
    PipelineValidationError,
    compile_pipeline,
    restore_contexts,
    snapshot_contexts,
    validate_pipeline,
)


class _Phase(Protocol):
    """A declarable no-op phase for compiler-level tests."""

    def __init__(self, name, effects=None, quiesce=True):
        self.name = name
        self._effects = effects
        self.quiesce_terminates = quiesce

    def effects(self):
        return self._effects

    def on_start(self, ctx: NodeContext) -> None:
        ctx.halt()


def _declared(name, reads=(), writes=(), quiesce=True, **kwargs):
    effects = PhaseEffects(reads=reads, writes=writes, **kwargs)
    return _Phase(name, effects, quiesce=quiesce)


class TestPhaseEffects:
    def test_collections_normalize_to_frozen_forms(self):
        effects = PhaseEffects(reads=["a", "a"], writes=("b",), produces=["t"])
        assert effects.reads == frozenset({"a"})
        assert effects.touched == frozenset({"a", "b"})
        assert effects.produces == ("t",)

    def test_merged_unions_and_propagates_unfusable(self):
        left = PhaseEffects(reads=("a",), writes=("b",), globals_read=("g",))
        right = PhaseEffects(reads=("c",), fusable=False, writes_output=True)
        merged = left.merged(right)
        assert merged.reads == frozenset({"a", "c"})
        assert merged.writes == frozenset({"b"})
        assert merged.globals_read == frozenset({"g"})
        assert merged.writes_output and not merged.fusable
        assert left.merged(None) is left


class TestValidatePipeline:
    def test_read_before_write_raises(self):
        phases = [_declared("w", writes=("x",)), _declared("r", reads=("y",))]
        with pytest.raises(PipelineValidationError, match="'y'"):
            validate_pipeline(phases)

    def test_earlier_write_own_write_and_external_input_satisfy_reads(self):
        phases = [
            _declared("w", writes=("x",)),
            _declared("rmw", reads=("x", "x2"), writes=("x2",)),
            _declared("ext", reads=("forced",)),
        ]
        assert validate_pipeline(phases, external_reads=("forced",)) == []

    def test_opaque_phase_opens_validation_and_leaves_a_note(self):
        phases = [
            _Phase("mystery"),  # declares nothing, may write anything
            _declared("r", reads=("whatever",)),
        ]
        notes = validate_pipeline(phases)
        assert len(notes) == 1 and "mystery" in notes[0]

    def test_consumed_artifact_must_be_produced(self):
        phases = [_Phase("c", PhaseEffects(consumes=("bfs-tree",)))]
        with pytest.raises(PipelineValidationError, match="bfs-tree"):
            validate_pipeline(phases)
        assert validate_pipeline(phases, external_artifacts=("bfs-tree",)) == []


class TestCompilePipeline:
    def test_off_mode_is_all_singletons_but_still_validates(self):
        phases = [_declared("a", writes=("x",)), _declared("b", reads=("x",))]
        plan = compile_pipeline(phases, mode="off")
        assert [len(g.protocols) for g in plan.groups] == [1, 1]
        assert plan.fused_phase_count == 0
        with pytest.raises(PipelineValidationError):
            compile_pipeline([_declared("b", reads=("x",))], mode="off")

    def test_fuse_mode_groups_adjacent_declared_phases(self):
        phases = [
            _declared("a", writes=("x",)),
            _declared("b", reads=("x",), writes=("y",)),
            _declared("c", reads=("y",)),
        ]
        plan = compile_pipeline(phases, mode="fuse")
        assert [g.label for g in plan.groups] == ["a+b+c"]
        assert plan.fused_phase_count == 2
        assert plan.phases == tuple(phases)

    def test_undeclared_and_unfusable_phases_break_groups(self):
        opaque = _Phase("opaque")
        optout = _Phase("optout", PhaseEffects(fusable=False))
        polling = _declared("polling", quiesce=False)
        phases = [
            _declared("a"),
            opaque,
            _declared("b"),
            optout,
            polling,
            _declared("c"),
            _declared("d"),
        ]
        plan = compile_pipeline(phases, mode="fuse")
        assert [g.label for g in plan.groups] == [
            "a",
            "opaque",
            "b",
            "optout",
            "polling",
            "c+d",
        ]
        assert [g.fused for g in plan.groups] == [False] * 5 + [True]

    def test_max_group_size_bounds_the_replay_unit(self):
        phases = [_declared("p%d" % i) for i in range(5)]
        plan = compile_pipeline(phases, mode="fuse", max_group_size=2)
        assert [len(g.protocols) for g in plan.groups] == [2, 2, 1]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="pipeline mode"):
            compile_pipeline([], mode="eager")

    def test_describe_names_every_group(self):
        plan = compile_pipeline(
            [_declared("a"), _declared("b"), _Phase("solo")], mode="fuse"
        )
        text = plan.describe()
        assert "a+b" in text and "solo" in text and "mode=fuse" in text


class TestContextSnapshots:
    def _contexts(self):
        network = Network(nx.path_graph(4), seed=5)
        network.build_contexts()
        return [network.contexts[i] for i in sorted(network.contexts)]

    def test_round_trip_restores_state_output_rng_and_halt(self):
        contexts = self._contexts()
        contexts[0].state["k"] = [1, 2]
        contexts[1].write_output("kept")
        frames = snapshot_contexts(contexts)
        expected_draws = [ctx.rng.random() for ctx in contexts]

        contexts[0].state["k"].append(3)
        contexts[0].state["junk"] = True
        contexts[1].write_output("clobbered")
        contexts[2].halt()
        for ctx in contexts:
            ctx.rng.random()

        restore_contexts(contexts, frames)
        assert contexts[0].state == {"k": [1, 2]}
        assert contexts[1].output == "kept"
        assert not contexts[2].halted
        assert [ctx.rng.random() for ctx in contexts] == expected_draws

    def test_snapshot_is_isolated_from_later_mutation(self):
        contexts = self._contexts()
        contexts[0].state["k"] = [1]
        frames = snapshot_contexts(contexts)
        contexts[0].state["k"].append(2)  # must not leak into the snapshot
        restore_contexts(contexts, frames)
        assert contexts[0].state["k"] == [1]
        # Restoring twice must hand out independent copies too.
        contexts[0].state["k"].append(9)
        restore_contexts(contexts, frames)
        assert contexts[0].state["k"] == [1]

    def test_length_mismatch_raises(self):
        contexts = self._contexts()
        frames = snapshot_contexts(contexts)
        with pytest.raises(ValueError, match="covers"):
            restore_contexts(contexts[:-1], frames)


class TestArtifactCache:
    def _entry(self):
        return CachedPrefix(frames=[], phase_results=[])

    def test_hit_miss_and_skip_counters(self):
        cache = ArtifactCache()
        assert cache.lookup("k") is None
        cache.store("k", self._entry())
        assert cache.lookup("k") is not None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_prefers_recently_used(self):
        cache = ArtifactCache(max_entries=2)
        cache.store("a", self._entry())
        cache.store("b", self._entry())
        assert cache.lookup("a") is not None  # refresh "a"
        cache.store("c", self._entry())  # evicts "b"
        assert cache.lookup("b") is None
        assert cache.lookup("a") is not None and cache.lookup("c") is not None
        assert len(cache) == 2

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_entries=0)


class TestRunnerIntegration:
    """The composite runner driving the compiler and cache end to end."""

    def _runner(self, cache=None, pipeline_mode="fuse"):
        from repro.congest.config import CongestConfig
        from repro.core.dist_near_clique import DistNearCliqueRunner

        return DistNearCliqueRunner(
            epsilon=0.25,
            sample_probability=0.05,
            max_sample_size=None,
            rng=random.Random(3),
            config=CongestConfig(engine="batched", pipeline_mode=pipeline_mode),
            artifact_cache=cache,
        )

    def _fingerprint(self, result):
        m = result.metrics
        return (result.labels, result.sample, m.rounds, m.total_messages, m.total_bits)

    def test_fuse_plan_covers_the_whole_composite(self):
        graph = nx.connected_caveman_graph(2, 8)
        runner = self._runner()
        runner.run(graph, sample=(0, 1, 9))
        plan = runner.last_pipeline_plan
        assert plan is not None and plan.mode == "fuse"
        assert plan.fused_phase_count > 0

    def test_artifact_cache_replay_is_bit_identical(self):
        graph = nx.connected_caveman_graph(2, 8)
        cache = ArtifactCache()
        fresh = self._runner(cache).run(graph, sample=(0, 1, 9))
        assert (cache.hits, cache.misses) == (0, 1)
        replay = self._runner(cache).run(graph, sample=(0, 1, 9))
        assert cache.hits == 1
        assert self._fingerprint(replay) == self._fingerprint(fresh)
        # A different sample is a different key — never a stale tree.
        other = self._runner(cache).run(graph, sample=(0, 2, 9))
        assert cache.misses == 2
        assert other.sample != replay.sample

    def test_cache_skipped_on_worker_authoritative_sessions(self):
        from repro.congest.config import CongestConfig
        from repro.core.dist_near_clique import DistNearCliqueRunner

        graph = nx.connected_caveman_graph(2, 8)
        cache = ArtifactCache()
        runner = DistNearCliqueRunner(
            epsilon=0.25,
            sample_probability=0.05,
            max_sample_size=None,
            rng=random.Random(3),
            config=CongestConfig(
                engine="sharded",
                shards=2,
                shard_backend="process",
                session_mode="persistent",
                pipeline_mode="fuse",
            ),
            artifact_cache=cache,
        )
        runner.run(graph, sample=(0, 1, 9))
        assert cache.skips == 1
        assert (cache.hits, cache.misses) == (0, 0)
