"""Tests for the ``repro.lint`` protocol-contract analyzer.

Three fixture modules under ``tests/lint_fixtures/`` drive the suite:

* ``bad_protocols.py`` — one violation per rule, each offending line marked
  with an ``# expect: RULE_ID`` comment.  The test parses the markers and
  asserts the analyzer reports exactly those (rule id, line) pairs.
* ``clean_protocol.py`` — idiomatic protocol code; zero findings required.
* ``suppressed.py`` — inline and standalone suppressions silencing real
  violations, plus one stale (``SUP001``) and one unknown-id (``SUP002``)
  suppression.

On top of the fixtures: the rule registry is pinned (stable ids and
severities are a public interface), the reporters are exercised, the CLI
entry points return the right exit codes, and — the actual CI gate —
``src/repro`` itself must lint clean.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import all_rules, get_rule, render_json, render_text, run_lint
from repro.lint.cli import main as lint_main
from repro.lint.core import LintFinding, SEVERITY_ERROR, SEVERITY_WARNING

FIXTURES = Path(__file__).parent / "lint_fixtures"
BAD = FIXTURES / "bad_protocols.py"
CLEAN = FIXTURES / "clean_protocol.py"
SUPPRESSED = FIXTURES / "suppressed.py"
REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"

_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z]+\d+)")


def expected_markers(path: Path):
    """(line, rule_id) pairs declared by ``# expect:`` comments in *path*."""
    pairs = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            pairs.add((lineno, match.group(1)))
    return pairs


class TestFixtureFindings:
    def test_bad_protocols_fire_exactly_the_expected_rules(self):
        expected = expected_markers(BAD)
        assert expected, "fixture must declare # expect: markers"
        findings = run_lint([str(BAD)])
        reported = {(f.line, f.rule_id) for f in findings}
        assert reported == expected

    def test_every_ast_rule_is_covered_by_the_bad_fixture(self):
        # SUP001/SUP002 are driver-owned and covered by the suppression
        # fixture instead; everything else must fire in bad_protocols.py.
        fired = {rule_id for _, rule_id in expected_markers(BAD)}
        ast_rules = {r.rule_id for r in all_rules()} - {"SUP001", "SUP002"}
        assert ast_rules <= fired

    def test_clean_protocol_has_zero_findings(self):
        assert run_lint([str(CLEAN)]) == []

    def test_findings_are_sorted_and_carry_locations(self):
        findings = run_lint([str(BAD)])
        assert findings == sorted(findings)
        for finding in findings:
            assert finding.line >= 1 and finding.col >= 1
            assert finding.location.startswith(str(BAD))


class TestSuppressions:
    def test_suppressed_violations_stay_silent(self):
        findings = run_lint([str(SUPPRESSED)])
        assert {f.rule_id for f in findings} == {"SUP001", "SUP002"}

    def test_unused_suppression_reports_its_own_line(self):
        findings = run_lint([str(SUPPRESSED)])
        (stale,) = [f for f in findings if f.rule_id == "SUP001"]
        assert "HOOK001" in stale.message
        source = SUPPRESSED.read_text().splitlines()
        assert "ignore[HOOK001]" in source[stale.line - 1]

    def test_unknown_rule_id_reports_sup002(self):
        findings = run_lint([str(SUPPRESSED)])
        (unknown,) = [f for f in findings if f.rule_id == "SUP002"]
        assert "NOPE999" in unknown.message

    def test_ignoring_sup_rules_silences_them(self):
        findings = run_lint([str(SUPPRESSED)], ignore=("SUP",))
        assert findings == []

    def test_select_filters_to_matching_rules(self):
        findings = run_lint([str(BAD)], select=("DET",))
        assert findings
        assert all(f.rule_id.startswith("DET") for f in findings)

    def test_ignore_filters_out_matching_rules(self):
        findings = run_lint([str(BAD)], ignore=("DET", "SUP"))
        assert findings
        assert not any(f.rule_id.startswith("DET") for f in findings)


class TestRuleRegistry:
    # Rule ids and severities are a public interface: suppression comments
    # and CI configuration reference them, so changes must be deliberate.
    PINNED = {
        "DET001": SEVERITY_ERROR,
        "DET002": SEVERITY_ERROR,
        "DET003": SEVERITY_ERROR,
        "PROC001": SEVERITY_ERROR,
        "PROC002": SEVERITY_ERROR,
        "WIRE001": SEVERITY_ERROR,
        "BDG001": SEVERITY_WARNING,
        "HOOK001": SEVERITY_ERROR,
        "HOOK002": SEVERITY_ERROR,
        "HOOK003": SEVERITY_ERROR,
        "PIPE001": SEVERITY_ERROR,
        "SUP001": SEVERITY_WARNING,
        "SUP002": SEVERITY_WARNING,
    }

    def test_registry_matches_the_pinned_contract(self):
        rules = {r.rule_id: r.severity for r in all_rules()}
        assert rules == self.PINNED

    def test_at_least_eight_rules(self):
        assert len(all_rules()) >= 8

    def test_every_rule_documents_its_invariant(self):
        for rule in all_rules():
            assert rule.invariant.strip(), rule.rule_id

    def test_get_rule_round_trips(self):
        for rule in all_rules():
            assert get_rule(rule.rule_id) == rule
        with pytest.raises(KeyError):
            get_rule("NOPE999")


class TestReporters:
    def test_text_report_lines_are_clickable(self):
        findings = run_lint([str(BAD)])
        text = render_text(findings)
        for finding in findings:
            assert f"{finding.path}:{finding.line}:{finding.col}" in text
            assert finding.rule_id in text
        assert "findings" in text.splitlines()[-1]

    def test_text_report_clean_message(self):
        assert "clean" in render_text([])

    def test_json_report_parses_and_matches(self):
        findings = run_lint([str(BAD)])
        payload = json.loads(render_json(findings))
        assert len(payload["findings"]) == len(findings)
        assert payload["summary"]["errors"] == sum(
            1 for f in findings if f.severity == SEVERITY_ERROR
        )
        first = payload["findings"][0]
        assert set(first) >= {"path", "line", "col", "rule", "severity", "message"}

    def test_finding_is_immutable(self):
        finding = run_lint([str(BAD)])[0]
        assert isinstance(finding, LintFinding)
        with pytest.raises(Exception):
            finding.line = 0  # type: ignore[misc]


class TestCli:
    def test_exit_one_on_findings(self, capsys):
        assert lint_main([str(BAD)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_exit_zero_on_clean(self, capsys):
        assert lint_main([str(CLEAN)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert lint_main([str(BAD), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] > 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in TestRuleRegistry.PINNED:
            assert rule_id in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(CLEAN)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout

    def test_repro_cli_subcommand(self):
        from repro.cli import main as repro_main

        assert repro_main(["lint", str(CLEAN)]) == 0
        assert repro_main(["lint", str(BAD)]) == 1


class TestPipelineEffectsRule:
    """PIPE001 resolution boundaries: what is checked and what is skipped."""

    HEADER = (
        "from repro.congest.node import NodeContext, Protocol\n"
        "from repro.congest.pipeline import PhaseEffects\n"
        'KEY_TOKEN = "token"\n'
    )

    def _lint(self, tmp_path, body):
        target = tmp_path / "pipe_case.py"
        target.write_text(self.HEADER + body)
        return [f for f in run_lint([str(target)]) if f.rule_id == "PIPE001"]

    def test_module_constant_keys_resolve_on_both_sides(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "class P(Protocol):\n"
            '    name = "p"\n'
            "    def effects(self):\n"
            "        return PhaseEffects(reads=(KEY_TOKEN,))\n"
            "    def on_start(self, ctx):\n"
            '        ctx.state["token"]\n'
            "        ctx.state[KEY_TOKEN] = 1\n",
        )
        # The read resolves through the constant and is covered; the write
        # is undeclared and fires.
        assert len(findings) == 1
        assert "writes ctx.state['token']" in findings[0].message

    def test_unresolvable_declaration_element_opens_the_category(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "class P(Protocol):\n"
            '    name = "p"\n'
            "    def effects(self):\n"
            "        return PhaseEffects(reads=(self.participant_key,))\n"
            "    def on_start(self, ctx):\n"
            '        ctx.state["anything"]\n',
        )
        assert findings == []

    def test_dynamic_composition_skips_the_class(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "class P(Protocol):\n"
            '    name = "p"\n'
            "    def effects(self):\n"
            "        return PhaseEffects(reads=()).merged(self.extra)\n"
            "    def on_start(self, ctx):\n"
            '        ctx.state["anything"] = 1\n',
        )
        assert findings == []

    def test_dynamic_usage_keys_are_skipped(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "class P(Protocol):\n"
            '    name = "p"\n'
            "    def effects(self):\n"
            "        return PhaseEffects(reads=())\n"
            "    def on_start(self, ctx):\n"
            "        ctx.state.get(self.key)\n"
            "        ctx.state[compute()] = 1\n",
        )
        assert findings == []

    def test_undeclared_protocol_is_out_of_scope(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "class P(Protocol):\n"
            '    name = "p"\n'
            "    def on_start(self, ctx):\n"
            '        ctx.state["anything"] = 1\n',
        )
        assert findings == []

    def test_globals_read_is_checked(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "class P(Protocol):\n"
            '    name = "p"\n'
            "    def effects(self):\n"
            '        return PhaseEffects(globals_read=("eps",))\n'
            "    def on_start(self, ctx):\n"
            '        ctx.globals.get("eps")\n'
            '        ctx.globals["delta"]\n',
        )
        assert len(findings) == 1
        assert "globals['delta']" in findings[0].message


class TestSelfApplication:
    def test_src_repro_is_lint_clean(self):
        """The CI gate: the shipped package satisfies its own contract."""
        findings = run_lint([str(SRC_REPRO)])
        assert findings == [], render_text(findings)

    def test_syntax_errors_are_reported_not_raised(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def on_start(ctx:\n")
        findings = run_lint([str(broken)])
        assert [f.rule_id for f in findings] == ["SYNTAX"]
