"""Integration tests: the distributed runner against the centralized oracle.

The main correctness statement of the implementation is that for a fixed
sample S the distributed CONGEST execution computes exactly the labels of
the centralized reference.  These tests exercise that equivalence across
graph families, plus the runner-specific behaviour (abort guard, metrics,
message-size discipline, label translation).
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.congest.config import CongestConfig
from repro.core import near_clique
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.core.params import AlgorithmParameters
from repro.core.reference import CentralizedNearCliqueFinder
from repro.graphs import generators


def assert_equivalent(graph, epsilon, sample, seed=0, min_output_size=0):
    """Run both implementations on the same sample and compare them."""
    finder = CentralizedNearCliqueFinder(graph, epsilon, min_output_size=min_output_size)
    reference = finder.run_with_sample(sample)
    runner = DistNearCliqueRunner(
        epsilon=epsilon,
        sample_probability=0.1,
        min_output_size=min_output_size,
        max_sample_size=None,
        rng=random.Random(seed),
    )
    distributed = runner.run(graph, sample=sample)
    assert distributed.labels == reference.labels
    ref_candidates = {
        (c.component_root, c.subset_index, c.members, c.survived)
        for c in reference.candidates
    }
    dist_candidates = {
        (c.component_root, c.subset_index, c.members, c.survived)
        for c in distributed.candidates
    }
    assert dist_candidates == ref_candidates
    return distributed, reference


class TestEquivalenceWithReference:
    def test_planted_near_clique_various_samples(self, planted_workload):
        graph, _ = planted_workload
        finder = CentralizedNearCliqueFinder(graph, 0.2)
        for seed in range(5):
            sample = finder.draw_sample(0.1, random.Random(seed))
            assert_equivalent(graph, 0.2, sample, seed=seed)

    def test_counterexample_graph(self, counterexample_workload):
        graph, _ = counterexample_workload
        finder = CentralizedNearCliqueFinder(graph, 0.25)
        sample = finder.draw_sample(0.08, random.Random(3))
        assert_equivalent(graph, 0.25, sample)

    def test_two_disjoint_cliques(self):
        graph = nx.Graph()
        graph.add_edges_from(nx.complete_graph(8).edges())
        graph.add_edges_from((u + 20, v + 20) for u, v in nx.complete_graph(6).edges())
        assert_equivalent(graph, 0.2, {0, 1, 21, 22})

    def test_path_of_cliques_graph(self):
        graph, _ = generators.path_of_cliques(32)
        assert_equivalent(graph, 0.2, {0, 1, 2, 25, 26})

    def test_sparse_random_graph(self):
        graph = nx.gnp_random_graph(40, 0.08, seed=5)
        assert_equivalent(graph, 0.3, {1, 4, 9, 16, 25})

    def test_star_and_isolated_sample_nodes(self):
        graph = nx.star_graph(12)
        graph.add_node(50)
        assert_equivalent(graph, 0.2, {0, 3, 50})

    def test_empty_sample(self):
        graph = nx.complete_graph(12)
        distributed, reference = assert_equivalent(graph, 0.2, set())
        assert distributed.labelled_nodes == frozenset()

    def test_whole_graph_sampled_small(self):
        graph = nx.complete_graph(7)
        assert_equivalent(graph, 0.2, set(range(7)))

    def test_min_output_size_respected(self, planted_workload):
        graph, _ = planted_workload
        assert_equivalent(graph, 0.2, {0, 1, 2}, min_output_size=10)

    def test_epsilon_sweep(self, planted_workload):
        graph, _ = planted_workload
        for epsilon in (0.1, 0.15, 0.25, 0.3):
            assert_equivalent(graph, epsilon, {0, 4, 9, 41})


class TestRunnerBehaviour:
    def test_coin_flip_mode_draws_reasonable_sample(self, planted_workload):
        graph, _ = planted_workload
        runner = DistNearCliqueRunner(
            epsilon=0.2, sample_probability=0.15, rng=random.Random(5)
        )
        result = runner.run(graph)
        assert not result.aborted
        # |S| is Binomial(60, 0.15): anything within a generous band.
        assert 1 <= len(result.sample) <= 25

    def test_abort_guard_triggers(self):
        graph = nx.complete_graph(40)
        runner = DistNearCliqueRunner(
            epsilon=0.2, sample_probability=1.0, max_sample_size=6, rng=random.Random(1)
        )
        result = runner.run(graph)
        assert result.aborted
        assert result.labelled_nodes == frozenset()
        assert "exceeds" in result.abort_reason

    def test_round_limit_reported_as_abort(self, planted_workload):
        graph, _ = planted_workload
        config = CongestConfig(max_rounds=3).with_log_budget(60).with_max_rounds(3)
        runner = DistNearCliqueRunner(
            epsilon=0.2,
            sample_probability=0.1,
            rng=random.Random(2),
            config=config,
        )
        result = runner.run(graph, sample={0, 1, 2, 7})
        assert result.aborted
        assert "round limit" in result.abort_reason

    def test_messages_stay_within_log_budget(self, planted_workload):
        graph, _ = planted_workload
        runner = DistNearCliqueRunner(
            epsilon=0.2, sample_probability=0.1, rng=random.Random(3)
        )
        result = runner.run(graph, sample={0, 1, 5, 9})
        budget = CongestConfig().with_log_budget(graph.number_of_nodes())
        assert result.metrics.max_message_bits <= budget.message_bit_budget

    def test_metrics_breakdown_contains_all_phases(self, planted_workload):
        graph, _ = planted_workload
        runner = DistNearCliqueRunner(
            epsilon=0.2, sample_probability=0.1, rng=random.Random(3)
        )
        result = runner.run(graph, sample={0, 1, 5})
        breakdown = result.metrics.protocol_breakdown
        for phase in ("nc-sampling", "min-id-bfs-tree", "nc-k-aggregation", "nc-vote"):
            assert phase in breakdown

    def test_round_complexity_scales_with_two_to_sample(self, planted_workload):
        graph, _ = planted_workload
        from repro.analysis import theory

        runner = DistNearCliqueRunner(
            epsilon=0.2, sample_probability=0.1, rng=random.Random(4)
        )
        for sample in ({0, 1}, {0, 1, 2, 3}, {0, 1, 2, 3, 4, 5}):
            result = runner.run(graph, sample=sample)
            bound = theory.lemma_5_1_round_bound(len(sample))
            assert result.metrics.rounds <= bound

    def test_non_integer_labels_translated_back(self):
        labels = ["a", "b", "c", "d", "e", "f"]
        graph = nx.Graph()
        graph.add_edges_from(
            (labels[i], labels[j])
            for i in range(len(labels))
            for j in range(i + 1, len(labels))
        )
        runner = DistNearCliqueRunner(
            epsilon=0.2, sample_probability=0.5, rng=random.Random(6)
        )
        result = runner.run(graph, sample={"a", "b"})
        assert set(result.labels) == set(labels)
        assert result.largest_cluster() <= set(labels)
        # For a 6-clique and a sampled pair {a, b}, the best subset is a
        # singleton X = {a}: K_{2eps^2}(X) is the other five vertices and all
        # of them survive into T_eps(X).
        assert len(result.largest_cluster()) == 5

    def test_requires_epsilon_and_probability(self):
        with pytest.raises(ValueError):
            DistNearCliqueRunner()

    def test_accepts_parameters_record(self, planted_workload):
        graph, _ = planted_workload
        params = AlgorithmParameters(epsilon=0.2, sample_probability=0.1)
        runner = DistNearCliqueRunner(parameters=params, rng=random.Random(8))
        result = runner.run(graph, sample={0, 2})
        assert not result.aborted

    def test_labels_match_candidate_membership(self, planted_workload):
        graph, _ = planted_workload
        runner = DistNearCliqueRunner(
            epsilon=0.2, sample_probability=0.1, rng=random.Random(9)
        )
        result = runner.run(graph, sample={0, 1, 2, 11})
        for candidate in result.candidates:
            if candidate.survived:
                for node in candidate.members:
                    assert result.labels[node] == candidate.component_root

    def test_output_density_guarantee_lemma_5_3(self, planted_workload):
        graph, _ = planted_workload
        n = graph.number_of_nodes()
        runner = DistNearCliqueRunner(
            epsilon=0.2, sample_probability=0.1, rng=random.Random(10)
        )
        result = runner.run(graph, sample={0, 1, 4, 8})
        for candidate in result.candidates:
            if candidate.size <= 1:
                continue
            bound = near_clique.lemma_5_3_defect_bound(n, candidate.size, 0.2)
            assert (
                near_clique.near_clique_defect(graph, candidate.members)
                <= bound + 1e-9
            )

    def test_step4f_sampling_mode_runs(self, planted_workload):
        graph, _ = planted_workload
        runner = DistNearCliqueRunner(
            epsilon=0.2,
            sample_probability=0.1,
            use_step4f_sampling=True,
            step4f_sample_size=8,
            rng=random.Random(11),
        )
        result = runner.run(graph, sample={0, 1, 2})
        assert not result.aborted
        # Estimation can shrink the output but the run must stay valid.
        assert result.largest_cluster_density(graph) >= 0.6 or not result.largest_cluster()
