"""Tests for graph generators, analysis utilities and IO."""

from __future__ import annotations

import itertools
import os

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import near_clique
from repro.graphs import analysis, generators, io


class TestPlantedNearClique:
    def test_planted_set_satisfies_promise(self):
        for seed in range(5):
            graph, planted = generators.planted_near_clique(
                n=60, clique_fraction=0.5, epsilon=0.2 ** 3, background_p=0.05, seed=seed
            )
            assert len(planted.members) == 30
            assert generators.verify_promise(graph, planted.members, 0.2 ** 3)

    def test_zero_epsilon_plants_strict_clique(self):
        graph, planted = generators.planted_near_clique(40, 0.4, 0.0, 0.0, seed=1)
        assert near_clique.density(graph, planted.members) == 1.0

    def test_background_probability_zero_gives_isolated_rest(self):
        graph, planted = generators.planted_near_clique(30, 0.3, 0.0, 0.0, seed=2)
        outside = set(graph.nodes()) - planted.members
        assert all(graph.degree(v) == 0 for v in outside)

    def test_node_count_and_labels(self):
        graph, _ = generators.planted_near_clique(45, 0.2, 0.0, 0.05, seed=3)
        assert graph.number_of_nodes() == 45
        assert set(graph.nodes()) == set(range(45))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generators.planted_near_clique(10, 0.0, 0.1)
        with pytest.raises(ValueError):
            generators.planted_near_clique(10, 0.5, 1.0)
        with pytest.raises(ValueError):
            generators.erdos_renyi(0, 0.5)

    def test_planted_clique_helper(self):
        graph, planted = generators.planted_clique(50, 20, background_p=0.02, seed=4)
        assert len(planted.members) == 20
        assert near_clique.density(graph, planted.members) == 1.0

    @given(
        st.integers(min_value=10, max_value=60),
        st.floats(min_value=0.1, max_value=0.6),
        st.floats(min_value=0.0, max_value=0.2),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_planted_defect_never_exceeds_target(self, n, fraction, epsilon, seed):
        graph, planted = generators.planted_near_clique(
            n=n, clique_fraction=fraction, epsilon=epsilon, background_p=0.0, seed=seed
        )
        assert near_clique.near_clique_defect(graph, planted.members) <= epsilon + 1e-9


class TestShinglesCounterexample:
    def test_block_sizes_match_construction(self):
        graph, partition = generators.shingles_counterexample(n=80, delta=0.5)
        assert len(partition["C1"]) == len(partition["C2"]) == 20
        assert len(partition["I1"]) == len(partition["I2"]) == 20
        assert partition["clique"] == partition["C1"] | partition["C2"]

    def test_clique_is_a_clique_and_independent_sets_are_independent(self):
        graph, partition = generators.shingles_counterexample(n=60, delta=0.4)
        assert near_clique.density(graph, partition["clique"]) == 1.0
        for block in ("I1", "I2"):
            assert near_clique.ordered_pair_edge_count(graph, partition[block]) == 0

    def test_bipartite_connections(self):
        graph, partition = generators.shingles_counterexample(n=40, delta=0.5)
        for u in partition["I1"]:
            for v in partition["C1"]:
                assert graph.has_edge(u, v)
        for u in partition["I1"]:
            for v in partition["C2"]:
                assert not graph.has_edge(u, v)
        for u in partition["I1"]:
            for v in partition["I2"]:
                assert not graph.has_edge(u, v)

    def test_case1_candidate_density_formula(self):
        # The density of C1 ∪ C2 ∪ I1 approaches 2δ/(1+δ) as n grows.
        graph, partition = generators.shingles_counterexample(n=200, delta=0.5)
        candidate = partition["C1"] | partition["C2"] | partition["I1"]
        assert near_clique.density(graph, candidate) == pytest.approx(
            2 * 0.5 / 1.5, abs=0.02
        )

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            generators.shingles_counterexample(n=40, delta=1.5)


class TestPathOfCliques:
    def test_structure(self):
        graph, partition = generators.path_of_cliques(32)
        assert len(partition["A"]) == 16
        assert len(partition["B"]) == 8
        assert near_clique.density(graph, partition["A"]) == 1.0
        assert near_clique.density(graph, partition["B"]) == 1.0
        assert nx.is_connected(graph)

    def test_path_length_separates_cliques(self):
        graph, partition = generators.path_of_cliques(40)
        a_node = max(partition["A"])
        b_node = min(partition["B"])
        distance = nx.shortest_path_length(graph, a_node, b_node)
        assert distance >= len(partition["P"])

    def test_delete_clique_edges(self):
        graph, partition = generators.path_of_cliques(24)
        stripped = generators.delete_clique_edges(graph, partition["A"])
        assert near_clique.ordered_pair_edge_count(stripped, partition["A"]) == 0
        # Edges outside A are untouched.
        assert near_clique.density(stripped, partition["B"]) == 1.0

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generators.path_of_cliques(4)


class TestOtherGenerators:
    def test_web_community_graph_plants_disjoint_communities(self):
        graph, communities = generators.web_community_graph(100, communities=3, seed=5)
        members = [c.members for c in communities]
        for a, b in itertools.combinations(members, 2):
            assert not (a & b)
        for community in communities:
            assert near_clique.near_clique_defect(graph, community.members) <= 0.1

    def test_web_community_graph_sizes_descending(self):
        _, communities = generators.web_community_graph(90, communities=3, seed=1)
        sizes = [c.size for c in communities]
        assert sizes == sorted(sizes, reverse=True)

    def test_web_community_rejects_overfull(self):
        with pytest.raises(ValueError):
            generators.web_community_graph(50, communities=10, community_fraction=0.2)

    def test_adhoc_radio_network_hotspot_is_dense(self):
        graph, positions = generators.adhoc_radio_network(80, seed=3)
        assert len(positions) == 80
        hotspot = range(int(0.3 * 80))
        assert near_clique.density(graph, hotspot) >= 0.7

    def test_erdos_renyi_edge_count_reasonable(self):
        graph = generators.erdos_renyi(100, 0.1, seed=7)
        expected = 0.1 * 100 * 99 / 2
        assert 0.5 * expected <= graph.number_of_edges() <= 1.5 * expected


class TestAnalysisUtilities:
    def test_density_report(self):
        graph = nx.complete_graph(5)
        graph.remove_edge(0, 1)
        report = analysis.density_report(graph, range(5))
        assert report.size == 5
        assert report.ordered_pairs_present == 18
        assert report.defect == pytest.approx(0.1)
        assert report.is_near_clique(0.1)
        assert not report.is_near_clique(0.05)

    def test_missing_pairs(self):
        graph = nx.complete_graph(4)
        graph.remove_edge(1, 3)
        assert analysis.missing_pairs(graph, range(4)) == [(1, 3)]

    def test_degree_summary(self):
        graph = nx.star_graph(4)
        summary = analysis.degree_summary(graph)
        assert summary["max"] == 4.0
        assert summary["min"] == 1.0
        assert analysis.degree_summary(nx.Graph()) == {"min": 0.0, "mean": 0.0, "max": 0.0}

    def test_component_sizes(self, two_triangles):
        assert analysis.component_sizes(two_triangles) == [3, 3]
        assert analysis.component_sizes(two_triangles, nodes={0, 1, 10}) == [2, 1]

    def test_induced_diameter(self):
        graph = nx.path_graph(6)
        assert analysis.induced_diameter(graph, range(6)) == 5
        assert analysis.induced_diameter(graph, {0, 5}) is None
        assert analysis.induced_diameter(graph, set()) is None

    def test_densest_known_subsets_sorted(self):
        graph = nx.complete_graph(6)
        graph.add_edges_from([(10, 11)])
        reports = analysis.densest_known_subsets(graph, [range(6), {10, 11, 0}])
        assert reports[0].size == 6

    def test_local_view_signature_detects_difference_only_within_radius(self):
        graph, partition = generators.path_of_cliques(32)
        stripped = generators.delete_clique_edges(graph, partition["A"])
        b_node = max(partition["B"])
        short = len(partition["P"]) // 2
        assert analysis.local_view_signature(
            graph, b_node, short
        ) == analysis.local_view_signature(stripped, b_node, short)
        full = graph.number_of_nodes()
        assert analysis.local_view_signature(
            graph, b_node, full
        ) != analysis.local_view_signature(stripped, b_node, full)

    def test_greedy_near_clique_certificate(self):
        graph = nx.complete_graph(4)
        ok, report = analysis.greedy_near_clique_certificate(graph, range(4), 0.0)
        assert ok and report.density == 1.0


class TestIO:
    def test_round_trip(self, tmp_path):
        graph, planted = generators.planted_near_clique(30, 0.4, 0.0, 0.05, seed=2)
        path = os.path.join(str(tmp_path), "workload.edges")
        io.write_edge_list(graph, path, planted=planted.members, comment="test graph")
        loaded, loaded_planted = io.read_edge_list(path)
        assert set(loaded.nodes()) == set(graph.nodes())
        assert set(loaded.edges()) == set(graph.edges())
        assert loaded_planted == planted.members

    def test_round_trip_preserves_isolated_nodes(self, tmp_path):
        graph = nx.Graph()
        graph.add_nodes_from(range(5))
        graph.add_edge(0, 1)
        path = os.path.join(str(tmp_path), "isolated.edges")
        io.write_edge_list(graph, path)
        loaded, planted = io.read_edge_list(path)
        assert loaded.number_of_nodes() == 5
        assert planted is None

    def test_save_workload_writes_metadata(self, tmp_path):
        graph = nx.path_graph(4)
        path = io.save_workload(
            graph, str(tmp_path), "pathy", metadata={"kind": "path"}
        )
        assert os.path.exists(path)
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read()
        assert "workload: pathy" in content
        assert "kind: path" in content


class TestLoadSnapEdgelist:
    """The looser SNAP corpus format: comments, tabs, dups, self-loops."""

    SNAP_SAMPLE = (
        "# Directed graph (each unordered pair of nodes is saved once)\n"
        "# Nodes: 5 Edges: 4\n"
        "# FromNodeId\tToNodeId\n"
        "0\t3\n"
        "3 0\n"          # duplicate, other orientation, space-separated
        "3\t7\n"
        "7\t7\n"         # self-loop: dropped
        "\n"
        "  12   7  \n"   # leading/trailing whitespace
        "# trailing comment\n"
        "12\t40\n"
    )

    def _write(self, tmp_path, text):
        path = os.path.join(str(tmp_path), "snap.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return path

    def test_parses_comments_whitespace_dups_and_self_loops(self, tmp_path):
        graph = io.load_snap_edgelist(self._write(tmp_path, self.SNAP_SAMPLE))
        assert sorted(graph.nodes()) == [0, 3, 7, 12, 40]
        assert sorted(tuple(sorted(e)) for e in graph.edges()) == [
            (0, 3),
            (3, 7),
            (7, 12),
            (12, 40),
        ]

    def test_relabel_densifies_and_keeps_snap_ids(self, tmp_path):
        graph = io.load_snap_edgelist(
            self._write(tmp_path, self.SNAP_SAMPLE), relabel=True
        )
        assert sorted(graph.nodes()) == [0, 1, 2, 3, 4]
        assert [graph.nodes[v]["snap_id"] for v in range(5)] == [0, 3, 7, 12, 40]
        assert graph.has_edge(0, 1) and graph.has_edge(3, 4)

    def test_malformed_line_reports_the_line_number(self, tmp_path):
        path = self._write(tmp_path, "0\t1\n2 3 4\n")
        with pytest.raises(ValueError, match=":2:"):
            io.load_snap_edgelist(path)
        path = self._write(tmp_path, "0\t1\nx y\n")
        with pytest.raises(ValueError, match="non-integer"):
            io.load_snap_edgelist(path)

    def test_loaded_graph_feeds_the_network(self, tmp_path):
        from repro.congest.network import Network

        graph = io.load_snap_edgelist(
            self._write(tmp_path, self.SNAP_SAMPLE), relabel=True
        )
        network = Network(graph, seed=0)
        assert network.n == 5
        assert network.neighbors(1) == (0, 2)
