"""Tests for the Section 4.1 boosting wrapper."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.boosting import (
    BoostedNearCliqueRunner,
    repetitions_for_failure_probability,
)
from repro.core.params import AlgorithmParameters
from repro.graphs import generators


class TestRepetitionFormula:
    def test_matches_log_formula(self):
        # lambda = ceil(log q / log(1 - r))
        assert repetitions_for_failure_probability(0.01, 0.5) == 7
        assert repetitions_for_failure_probability(0.1, 0.5) == 4
        assert repetitions_for_failure_probability(0.5, 0.5) == 1

    def test_low_single_run_success_needs_more(self):
        assert repetitions_for_failure_probability(
            0.05, 0.2
        ) > repetitions_for_failure_probability(0.05, 0.6)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            repetitions_for_failure_probability(0.0, 0.5)
        with pytest.raises(ValueError):
            repetitions_for_failure_probability(0.1, 1.0)


class TestBoostedRunner:
    def test_requires_parameters_or_kwargs(self):
        with pytest.raises(ValueError):
            BoostedNearCliqueRunner()

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            BoostedNearCliqueRunner(
                epsilon=0.2, sample_probability=0.1, engine="quantum"
            )

    def test_repetitions_from_target_failure(self):
        runner = BoostedNearCliqueRunner(
            epsilon=0.2,
            sample_probability=0.1,
            target_failure=0.01,
            single_run_success=0.5,
        )
        assert runner.repetitions == 7

    def test_boosting_improves_success_rate(self, planted_workload):
        graph, planted = planted_workload
        params = AlgorithmParameters(
            epsilon=0.2, sample_probability=0.05, max_sample_size=12
        )
        single_hits = 0
        boosted_hits = 0
        trials = 12
        for seed in range(trials):
            single = BoostedNearCliqueRunner(
                parameters=params, repetitions=1, rng=random.Random(seed)
            ).run(graph)
            boosted = BoostedNearCliqueRunner(
                parameters=params, repetitions=6, rng=random.Random(seed)
            ).run(graph)
            single_hits += single.recall_of(planted.members) >= 0.7
            boosted_hits += boosted.recall_of(planted.members) >= 0.7
        assert boosted_hits >= single_hits
        assert boosted_hits >= trials - 2  # boosted runs almost always succeed

    def test_surviving_candidates_disjoint_across_versions(self, planted_workload):
        graph, _ = planted_workload
        runner = BoostedNearCliqueRunner(
            epsilon=0.2, sample_probability=0.1, repetitions=5, rng=random.Random(3)
        )
        result = runner.run(graph)
        seen = set()
        for candidate in result.candidates:
            if not candidate.survived:
                continue
            assert not (candidate.members & seen)
            seen |= candidate.members

    def test_labels_come_from_surviving_candidates_only(self, planted_workload):
        graph, _ = planted_workload
        result = BoostedNearCliqueRunner(
            epsilon=0.2, sample_probability=0.1, repetitions=4, rng=random.Random(5)
        ).run(graph)
        labelled = {v for v, label in result.labels.items() if label is not None}
        survivors = set()
        for candidate in result.candidates:
            if candidate.survived:
                survivors |= candidate.members
        assert labelled == survivors

    def test_aborted_versions_are_wasted_but_harmless(self):
        # A tiny max_sample_size with p = 1 makes every version abort: the
        # boosted run then outputs bottom everywhere instead of crashing.
        graph = nx.complete_graph(20)
        runner = BoostedNearCliqueRunner(
            epsilon=0.2,
            sample_probability=1.0,
            max_sample_size=3,
            repetitions=3,
            rng=random.Random(1),
        )
        result = runner.run(graph)
        assert result.labelled_nodes == frozenset()
        assert result.candidates == []

    def test_distributed_engine_accumulates_rounds(self, planted_workload):
        graph, _ = planted_workload
        result = BoostedNearCliqueRunner(
            epsilon=0.2,
            sample_probability=0.08,
            repetitions=2,
            engine="distributed",
            rng=random.Random(7),
        ).run(graph)
        assert result.metrics is not None
        assert result.metrics.rounds > 0

    def test_distributed_and_centralized_engines_agree_in_quality(self, planted_workload):
        graph, planted = planted_workload
        central = BoostedNearCliqueRunner(
            epsilon=0.2, sample_probability=0.1, repetitions=3, rng=random.Random(11)
        ).run(graph)
        distributed = BoostedNearCliqueRunner(
            epsilon=0.2,
            sample_probability=0.1,
            repetitions=3,
            engine="distributed",
            rng=random.Random(11),
        ).run(graph)
        # The two engines draw different samples, so outputs differ, but both
        # should recover most of the planted set with 3 repetitions.
        assert central.recall_of(planted.members) >= 0.6
        assert distributed.recall_of(planted.members) >= 0.6


class TestSessionAwareBoosting:
    """The distributed wrapper runs all λ versions through one network and
    one execution session (per-version RNG streams via ``Network.reseed``),
    so results must be engine-independent and the shared session's
    accounting must span every version."""

    def _run(self, graph, config=None, seed=7):
        return BoostedNearCliqueRunner(
            epsilon=0.2,
            sample_probability=0.08,
            repetitions=3,
            engine="distributed",
            congest_config=config,
            rng=random.Random(seed),
        ).run(graph)

    def _fingerprint(self, result):
        return (
            result.labels,
            result.sample,
            [(c.component_root, c.subset_index, c.members, c.survived)
             for c in result.candidates],
            result.metrics.rounds,
            result.metrics.total_messages,
        )

    def test_shared_session_identical_across_backends(self, planted_workload):
        from repro.congest.config import CongestConfig

        graph, _ = planted_workload
        n = graph.number_of_nodes()
        baseline = self._fingerprint(self._run(graph))
        for config in (
            CongestConfig(engine="batched").with_log_budget(n),
            CongestConfig(
                engine="sharded",
                shards=2,
                shard_backend="process",
                session_mode="persistent",
                pipeline_mode="fuse",
            ).with_log_budget(n),
        ):
            assert self._fingerprint(self._run(graph, config)) == baseline

    def test_shared_session_stats_span_all_versions(self, planted_workload):
        from repro.congest.config import CongestConfig

        graph, _ = planted_workload
        config = CongestConfig(
            engine="sharded",
            shards=2,
            shard_backend="process",
            session_mode="persistent",
        ).with_log_budget(graph.number_of_nodes())
        runner = BoostedNearCliqueRunner(
            epsilon=0.2,
            sample_probability=0.08,
            repetitions=3,
            engine="distributed",
            congest_config=config,
            rng=random.Random(7),
        )
        runner.run(graph)
        # One shared session -> exactly one stats entry, whose phase count
        # covers all three versions' composite pipelines.
        assert len(runner.session_stats_by_version) == 1
        (stats,) = runner.session_stats_by_version
        assert len(stats.phases) > 14
