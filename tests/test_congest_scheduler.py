"""Tests for the synchronous scheduler, network and configuration."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.config import CongestConfig
from repro.congest.errors import (
    CongestionViolation,
    MessageSizeViolation,
    ProtocolError,
    RoundLimitExceeded,
)
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import NodeContext, Protocol
from repro.congest.scheduler import run_protocol


class EchoOnce(Protocol):
    """Each node sends one message to every neighbour, then halts."""

    name = "echo-once"

    def on_start(self, ctx):
        ctx.send_all(Message(kind="hello", payload=(ctx.node_id,)))

    def on_round(self, ctx, inbox):
        ctx.state["heard"] = sorted(inbound.sender for inbound in inbox)
        ctx.write_output(len(inbox))
        ctx.halt()


class FloodMax(Protocol):
    """Classic max-id flooding; terminates by quiescence."""

    name = "flood-max"
    quiesce_terminates = True

    def on_start(self, ctx):
        ctx.state["best"] = ctx.node_id
        ctx.send_all(Message(kind="max", payload=(ctx.node_id,)))

    def on_round(self, ctx, inbox):
        best = ctx.state["best"]
        improved = False
        for inbound in inbox:
            if inbound.payload[0] > best:
                best = inbound.payload[0]
                improved = True
        if improved:
            ctx.state["best"] = best
            ctx.send_all(Message(kind="max", payload=(best,)))

    def collect_output(self, ctx):
        return ctx.state["best"]


class NeverTerminates(Protocol):
    """Keeps every node busy without messages — must be detected as stalled."""

    name = "never-terminates"

    def on_round(self, ctx, inbox):
        ctx.state["spin"] = ctx.state.get("spin", 0) + 1


class DoubleSender(Protocol):
    name = "double-sender"

    def on_start(self, ctx):
        if ctx.neighbors:
            target = ctx.neighbors[0]
            ctx.send(target, Message(kind="a", payload=(1,)))
            ctx.send(target, Message(kind="b", payload=(2,)))

    def on_round(self, ctx, inbox):
        ctx.halt()


class BigTalker(Protocol):
    name = "big-talker"

    def on_start(self, ctx):
        ctx.send_all(Message(kind="big", payload=None, bits=10 ** 6))

    def on_round(self, ctx, inbox):
        ctx.halt()


class TestNetwork:
    def test_integer_labels_preserved(self, two_triangles):
        network = Network(two_triangles)
        assert set(network.node_ids) == {0, 1, 2, 10, 11, 12}
        assert network.label_of[10] == 10

    def test_string_labels_relabelled(self):
        graph = nx.Graph()
        graph.add_edges_from([("a", "b"), ("b", "c")])
        network = Network(graph)
        assert set(network.node_ids) == {0, 1, 2}
        assert set(network.label_of.values()) == {"a", "b", "c"}

    def test_mixed_type_labels_relabel_deterministically(self):
        # int + str labels in one graph: plain sorted() would raise TypeError;
        # the network must relabel deterministically instead.
        edges = [(3, "a"), ("a", "b"), ("b", 7), (7, 3)]
        network = Network(nx.Graph(edges))
        assert set(network.node_ids) == {0, 1, 2, 3}
        # ... and the mapping depends only on the label set, not on the
        # insertion order of nodes or edges.
        shuffled = Network(nx.Graph(list(reversed(edges))))
        assert network.id_of == shuffled.id_of
        assert network.label_of == shuffled.label_of

    def test_mixed_type_relabel_groups_by_type_then_repr(self):
        graph = nx.Graph()
        graph.add_nodes_from([10, 2, "z", "a"])
        network = Network(graph)
        # type name order: int < str; within a type, repr order.
        assert [network.label_of[i] for i in range(4)] == [10, 2, "a", "z"]

    def test_mixed_type_labels_roundtrip_through_a_protocol(self):
        graph = nx.Graph([(1, "hub"), (2, "hub"), (3, "hub")])
        network = Network(graph)
        result = run_protocol(network, EchoOnce())
        hub_id = network.id_of["hub"]
        assert result.outputs[hub_id] == 3

    def test_directed_graph_rejected(self):
        with pytest.raises(ValueError):
            Network(nx.DiGraph([(0, 1)]))

    def test_self_loops_removed(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 0), (0, 1)])
        network = Network(graph)
        assert network.neighbors(0) == (1,)

    def test_neighbors_sorted(self, star_graph):
        network = Network(star_graph)
        assert network.neighbors(0) == (1, 2, 3, 4, 5, 6)

    def test_degree_and_edges(self, star_graph):
        network = Network(star_graph)
        assert network.degree(0) == 6
        assert network.number_of_edges() == 6
        assert network.has_edge(0, 3)
        assert not network.has_edge(1, 2)

    def test_from_edges_with_isolates(self):
        network = Network.from_edges([(0, 1)], nodes=[0, 1, 5])
        assert 5 in network.node_ids
        assert network.degree(5) == 0

    def test_contexts_require_build(self, path_graph):
        network = Network(path_graph)
        with pytest.raises(ProtocolError):
            _ = network.contexts

    def test_per_node_inputs_unknown_node(self, path_graph):
        network = Network(path_graph)
        with pytest.raises(ProtocolError):
            network.build_contexts(per_node_inputs={99: {"x": 1}})

    def test_induced_subgraph(self, two_triangles):
        network = Network(two_triangles)
        sub = network.induced_subgraph([0, 1, 2])
        assert sub.number_of_edges() == 3

    def test_csr_adjacency_matches_neighbor_tuples(self, two_triangles):
        network = Network(two_triangles)
        ids, indptr, indices = network.csr()
        assert ids == (0, 1, 2, 10, 11, 12)
        assert len(indptr) == len(ids) + 1
        assert len(indices) == 2 * network.number_of_edges()
        for dense, node_id in enumerate(ids):
            neighbors = tuple(
                ids[j] for j in indices[indptr[dense]:indptr[dense + 1]]
            )
            assert neighbors == network.neighbors(node_id)
            assert network.node_index_of[node_id] == dense


class TestScheduler:
    def test_one_round_echo(self, path_graph):
        result = run_protocol(Network(path_graph), EchoOnce())
        # Every node hears exactly its degree.
        assert result.outputs == {0: 1, 1: 2, 2: 2, 3: 2, 4: 2, 5: 1}
        assert result.metrics.rounds == 1

    def test_flooding_agrees_on_max(self, two_triangles):
        result = run_protocol(Network(two_triangles), FloodMax())
        assert result.outputs[0] == 2 and result.outputs[2] == 2
        assert result.outputs[10] == 12 and result.outputs[11] == 12

    def test_flooding_rounds_bounded_by_diameter_plus_constant(self, path_graph):
        result = run_protocol(Network(path_graph), FloodMax())
        assert result.outputs == {v: 5 for v in range(6)}
        # The path has diameter 5; flooding needs at most diameter + 1 rounds
        # of traffic plus the final silent round check.
        assert result.metrics.rounds <= 7

    def test_messages_counted(self, path_graph):
        result = run_protocol(Network(path_graph), EchoOnce())
        assert result.metrics.total_messages == 10  # 2 * #edges
        assert result.metrics.max_message_bits > 0

    def test_stall_detection(self, path_graph):
        with pytest.raises(ProtocolError):
            run_protocol(Network(path_graph), NeverTerminates())

    def test_round_limit(self, path_graph):
        config = CongestConfig(max_rounds=2)
        with pytest.raises(RoundLimitExceeded):
            run_protocol(Network(path_graph), FloodMax(), config=config)

    def test_congestion_violation(self, path_graph):
        with pytest.raises(CongestionViolation):
            run_protocol(Network(path_graph), DoubleSender())

    def test_congestion_can_be_disabled(self, path_graph):
        config = CongestConfig(enforce_congestion=False)
        result = run_protocol(Network(path_graph), DoubleSender(), config=config)
        assert result.metrics.total_messages >= 10

    def test_message_size_violation(self, path_graph):
        config = CongestConfig().with_log_budget(6)
        with pytest.raises(MessageSizeViolation):
            run_protocol(Network(path_graph), BigTalker(), config=config)

    def test_local_model_config_allows_big_messages(self, path_graph):
        config = CongestConfig.local_model()
        result = run_protocol(Network(path_graph), BigTalker(), config=config)
        assert result.metrics.max_message_bits == 10 ** 6

    def test_send_to_non_neighbor_rejected(self):
        class BadSender(Protocol):
            def on_start(self, ctx):
                ctx.send(ctx.node_id + 2, Message(kind="x", payload=None))

        with pytest.raises(ProtocolError):
            run_protocol(Network(nx.path_graph(4)), BadSender())

    def test_send_non_message_rejected(self):
        class BadPayload(Protocol):
            def on_start(self, ctx):
                ctx.send(ctx.neighbors[0], "not a message")  # type: ignore[arg-type]

        with pytest.raises(ProtocolError):
            run_protocol(Network(nx.path_graph(3)), BadPayload())

    def test_halted_node_cannot_send(self):
        class SendAfterHalt(Protocol):
            def on_start(self, ctx):
                ctx.halt()
                ctx.send_all(Message(kind="x", payload=None))

        with pytest.raises(ProtocolError):
            run_protocol(Network(nx.path_graph(3)), SendAfterHalt())

    def test_per_round_trace_recorded(self, path_graph):
        result = run_protocol(Network(path_graph), FloodMax())
        assert len(result.metrics.per_round) == result.metrics.rounds

    def test_per_round_trace_can_be_disabled(self, path_graph):
        config = CongestConfig(record_round_metrics=False)
        result = run_protocol(Network(path_graph), FloodMax(), config=config)
        assert result.metrics.per_round == []

    def test_reuse_contexts_preserves_state(self, path_graph):
        network = Network(path_graph)
        run_protocol(network, FloodMax())

        class ReadsPrevious(Protocol):
            quiesce_terminates = True

            def on_start(self, ctx):
                ctx.write_output(ctx.state.get("best"))
                ctx.halt()

        result = run_protocol(network, ReadsPrevious(), reuse_contexts=True)
        assert all(value == 5 for value in result.outputs.values())

    def test_fresh_contexts_reset_state(self, path_graph):
        network = Network(path_graph)
        run_protocol(network, FloodMax())

        class ReadsPrevious(Protocol):
            quiesce_terminates = True

            def on_start(self, ctx):
                ctx.write_output(ctx.state.get("best"))
                ctx.halt()

        result = run_protocol(network, ReadsPrevious(), reuse_contexts=False)
        assert all(value is None for value in result.outputs.values())

    def test_global_inputs_visible_to_nodes(self, path_graph):
        class ReadsGlobal(Protocol):
            quiesce_terminates = True

            def on_start(self, ctx):
                ctx.write_output(ctx.globals["threshold"])
                ctx.halt()

        result = run_protocol(
            Network(path_graph), ReadsGlobal(), global_inputs={"threshold": 17}
        )
        assert set(result.outputs.values()) == {17}


class TestCongestConfig:
    def test_log_budget_scales(self):
        small = CongestConfig().with_log_budget(16)
        large = CongestConfig().with_log_budget(2 ** 20)
        assert large.message_bit_budget > small.message_bit_budget

    def test_log_budget_floor(self):
        assert CongestConfig().with_log_budget(2).message_bit_budget >= 32

    def test_with_max_rounds_copies(self):
        base = CongestConfig().with_log_budget(64)
        capped = base.with_max_rounds(5)
        assert capped.max_rounds == 5
        assert capped.message_bit_budget == base.message_bit_budget
        assert base.max_rounds is None

    def test_local_model_has_no_budget(self):
        assert CongestConfig.local_model().message_bit_budget is None


class TestNodeContext:
    def test_rng_missing_raises(self):
        ctx = NodeContext(node_id=0, neighbors=[1], n=2)
        with pytest.raises(ProtocolError):
            _ = ctx.rng

    def test_is_neighbor(self):
        ctx = NodeContext(node_id=0, neighbors=[1, 5], n=6)
        assert ctx.is_neighbor(5)
        assert not ctx.is_neighbor(3)

    def test_degree(self):
        ctx = NodeContext(node_id=0, neighbors=[1, 2, 3], n=4)
        assert ctx.degree == 3
