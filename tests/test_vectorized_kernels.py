"""Differential and property tests for the vectorized kernel engine.

The chain tests drive the real ``DistNearClique`` phase sequence through one
execution session with ``reuse_contexts=True``, alternating kernel-covered
phases (sampling, component dissemination, K-announcements) with callback
phases (BFS, convergecast, aggregations) — and assert that ``vectorized``
matches the reference oracle *per phase*: outputs, metrics including the
per-round trace, the kernel-written state tables (including dict insertion
order, which the arrival-order contract pins), and the context fold-back
slots (halted flag, round counter, empty outbox) that the next phase of a
``reuse_contexts`` pipeline reads.

The property tests cover the gather helper's CSR segment-reduction on
arbitrary graphs — disconnected components and isolated nodes included —
and the error parity of the closed-form broadcast schedule (bit-budget
violations and round caps must surface exactly as the callback loop raises
them).
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest import vectorized
from repro.congest.config import CongestConfig
from repro.congest.engine import get_engine
from repro.congest.errors import MessageSizeViolation, RoundLimitExceeded
from repro.congest.network import Network
from repro.congest.vectorized import KernelFrame
from repro.core import phases
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.graphs import generators

GLOBALS = {
    phases.GLOBAL_EPSILON: 0.25,
    phases.GLOBAL_SAMPLE_PROBABILITY: 0.35,
    phases.GLOBAL_MIN_OUTPUT_SIZE: 0,
    phases.GLOBAL_STEP4F_SAMPLING: False,
    phases.GLOBAL_STEP4F_SAMPLE_SIZE: 32,
}


def _chain_graphs():
    g_isolates = nx.Graph()
    g_isolates.add_nodes_from(range(6))
    g_isolates.add_edge(0, 1)
    planted, _ = generators.planted_near_clique(
        n=40, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=7
    )
    return [
        ("path", nx.path_graph(8)),
        ("star", nx.star_graph(9)),
        ("isolates", g_isolates),
        ("gnp", nx.gnp_random_graph(24, 0.18, seed=5)),
        ("planted", planted),
    ]


CHAIN_GRAPHS = _chain_graphs()
CHAIN_IDS = [name for name, _ in CHAIN_GRAPHS]


def _trace(metrics):
    return [
        (
            r.round_index,
            r.messages_sent,
            r.bits_sent,
            r.max_message_bits,
            r.edges_used,
            r.active_nodes,
        )
        for r in metrics.per_round
    ]


def _fingerprint(result):
    m = result.metrics
    return (
        result.outputs,
        m.rounds,
        m.total_messages,
        m.total_bits,
        m.max_message_bits,
        m.max_messages_per_round,
        _trace(m),
    )


def _context_snapshot(ctx):
    """The kernel-written state a ``reuse_contexts`` successor can observe.

    Dict *insertion order* is captured on purpose (as the key lists): the
    callback path builds the component and announcer tables in message
    arrival order, and the kernels must reproduce that order, not just the
    mapping.
    """
    records = ctx.state.get(phases.KEY_ADJ_COMPONENTS)
    adj = None
    if records is not None:
        adj = [
            (root, tuple(sorted(rec["members"])), tuple(sorted(rec["senders"])))
            for root, rec in records.items()
        ]
    announcers = ctx.state.get(phases.KEY_K_NEIGHBOR_ANNOUNCERS)
    ann = None
    if announcers is not None:
        ann = [
            (key, rec["size"], tuple(sorted(rec["senders"])))
            for key, rec in announcers.items()
        ]
    return (
        bool(ctx.state.get(phases.KEY_IN_SAMPLE)),
        ctx.state.get(phases.KEY_COMP_MEMBERS),
        adj,
        ann,
        ctx._halted,
        ctx._round,
        len(ctx._outgoing),
    )


def _run_chain(graph, engine_name, forced_sample=None):
    """Sampling + the full exploration/decision sequence, one session."""
    network = Network(graph, seed=4321)
    config = CongestConfig(engine=engine_name).with_log_budget(
        max(2, graph.number_of_nodes())
    )
    per_node_inputs = None
    if forced_sample is not None:
        per_node_inputs = {
            node_id: {phases.KEY_FORCED_SAMPLE: node_id in forced_sample}
            for node_id in network.node_ids
        }
    engine = get_engine(engine_name)
    snapshots = []
    with engine.open_session(network, config) as session:
        result = session.execute(
            phases.SamplingPhase(),
            global_inputs=GLOBALS,
            per_node_inputs=per_node_inputs,
        )
        snapshots.append(
            (
                "nc-sampling",
                _fingerprint(result),
                [
                    _context_snapshot(ctx)
                    for _, ctx in sorted(result.contexts.items())
                ],
            )
        )
        for phase in DistNearCliqueRunner._phase_sequence():
            result = session.execute(phase, reuse_contexts=True)
            snapshots.append(
                (
                    phase.name,
                    _fingerprint(result),
                    [
                        _context_snapshot(ctx)
                        for _, ctx in sorted(result.contexts.items())
                    ],
                )
            )
    return snapshots


class TestKernelCallbackChain:
    """Satellite: kernel and callback phases must chain bit-identically."""

    @pytest.mark.parametrize(
        "graph", [g for _, g in CHAIN_GRAPHS], ids=CHAIN_IDS
    )
    def test_full_phase_chain_matches_reference(self, graph):
        reference = _run_chain(graph, "reference")
        candidate = _run_chain(graph, "vectorized")
        for (ref_name, ref_fp, ref_state), (cand_name, cand_fp, cand_state) in zip(
            reference, candidate
        ):
            assert cand_name == ref_name
            assert cand_fp == ref_fp, "phase %r diverged" % ref_name
            assert cand_state == ref_state, (
                "phase %r left diverging context state" % ref_name
            )

    def test_chain_agrees_with_batched_under_forced_sample(self):
        graph = nx.gnp_random_graph(20, 0.25, seed=11)
        forced = {0, 3, 4, 9}
        reference = _run_chain(graph, "reference", forced_sample=forced)
        for engine_name in ("batched", "vectorized"):
            assert _run_chain(graph, engine_name, forced_sample=forced) == reference

    def test_full_runner_matches_reference(self):
        graph, _ = generators.planted_near_clique(
            n=60, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=3
        )
        results = {}
        for engine_name in ("reference", "vectorized"):
            import random

            runner = DistNearCliqueRunner(
                epsilon=0.25,
                sample_probability=0.1,
                rng=random.Random(1003),
                config=CongestConfig(engine=engine_name).with_log_budget(
                    graph.number_of_nodes()
                ),
            )
            outcome = runner.run(graph)
            results[engine_name] = (
                outcome.labels,
                outcome.metrics.rounds,
                outcome.metrics.total_messages,
                outcome.metrics.total_bits,
            )
        assert results["vectorized"] == results["reference"]


def _dissemination_inputs(network, members):
    """Per-node inputs that make node 0 a sampled broadcaster of *members*."""
    inputs = {
        node_id: {phases.KEY_IN_SAMPLE: False} for node_id in network.node_ids
    }
    inputs[0] = {
        phases.KEY_IN_SAMPLE: True,
        phases.KEY_ROOT: 0,
        phases.KEY_COMP_BCAST: list(members),
    }
    return inputs


class TestScheduleErrorParity:
    """Budget and round-cap errors must match the callback loop exactly."""

    def _run(self, engine_name, config, members):
        network = Network(nx.star_graph(5), seed=77)
        return get_engine(engine_name).execute(
            network,
            phases.CompDisseminationPhase(),
            config=config,
            global_inputs=GLOBALS,
            per_node_inputs=_dissemination_inputs(network, members),
        )

    def _error(self, engine_name, config, members):
        with pytest.raises((MessageSizeViolation, RoundLimitExceeded)) as info:
            self._run(engine_name, config, members)
        exc = info.value
        if isinstance(exc, MessageSizeViolation):
            return (
                "size",
                exc.sender,
                exc.receiver,
                exc.bits,
                exc.budget,
                exc.round_index,
            )
        return ("rounds", exc.max_rounds)

    def test_budget_violation_identical(self):
        config = CongestConfig(message_bit_budget=12)
        reference = self._error("reference", config, [1, 2, 3])
        assert reference[0] == "size"
        assert self._error("vectorized", config, [1, 2, 3]) == reference

    def test_round_limit_identical(self):
        config = CongestConfig(max_rounds=2).with_log_budget(6)
        reference = self._error("reference", config, [1, 2, 3, 4])
        assert reference == ("rounds", 2)
        assert self._error("vectorized", config, [1, 2, 3, 4]) == reference

    def test_budget_violation_wins_within_cap(self):
        # Over-budget from round 1 on, cap at 1: the size violation fires
        # during round 1, before the cap would be hit.
        config = CongestConfig(message_bit_budget=12, max_rounds=1)
        reference = self._error("reference", config, [1, 2, 3])
        assert reference[0] == "size"
        assert self._error("vectorized", config, [1, 2, 3]) == reference

    def test_round_cap_wins_before_late_violation(self):
        # Items 1..3 fit the budget; the huge member at queue position 3
        # would violate in round 4, but the cap aborts at round 2.
        config = CongestConfig(message_bit_budget=32, max_rounds=2)
        members = [1, 2, 3, 1 << 40]
        reference = self._error("reference", config, members)
        assert reference == ("rounds", 2)
        assert self._error("vectorized", config, members) == reference

    def test_clean_run_matches(self):
        config = CongestConfig().with_log_budget(6)
        reference = _fingerprint(self._run("reference", config, [1, 2, 3]))
        assert _fingerprint(self._run("vectorized", config, [1, 2, 3])) == reference


class TestKernelFrame:
    """Unit coverage of the frame's gather helper and intern vocabulary."""

    def _frame(self, graph):
        network = Network(graph, seed=9)
        return KernelFrame(
            network,
            phases.SamplingPhase(),
            CongestConfig(),
            network.build_contexts(),
        )

    def test_intern_vocabulary(self):
        frame = self._frame(nx.path_graph(3))
        assert frame.intern_kind("nc.comp") == 0
        assert frame.intern_kind("nc.ksize") == 1
        assert frame.intern_kind("nc.comp") == 0
        assert frame.kind_name(1) == "nc.ksize"

    def test_isolated_only_graph_counts_zero(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        frame = self._frame(graph)
        flags = np.ones(4, dtype=bool)
        assert frame.count_flagged_neighbors(flags).tolist() == [0, 0, 0, 0]

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_count_flagged_neighbors_matches_bruteforce(self, data):
        n = data.draw(st.integers(min_value=1, max_value=24), label="n")
        edges = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=48,
            ),
            label="edges",
        )
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from((u, v) for u, v in edges if u != v)
        flags = data.draw(
            st.lists(st.booleans(), min_size=n, max_size=n), label="flags"
        )
        frame = self._frame(graph)
        mask = np.array(flags, dtype=bool)
        counts = frame.count_flagged_neighbors(mask)
        for index in range(n):
            node_id = int(frame.ids[index])
            expected = sum(
                1
                for neighbor in graph.neighbors(node_id)
                if flags[int(neighbor)]
            )
            assert int(counts[index]) == expected


class TestFallbacks:
    """Protocols without kernels (or hosts without numpy) use the batched path."""

    def test_kernel_free_protocol_matches_batched(self):
        from repro.primitives.leader_election import MinIdFloodingProtocol

        graph = nx.gnp_random_graph(16, 0.2, seed=3)
        results = {}
        for engine_name in ("batched", "vectorized"):
            network = Network(graph, seed=5)
            results[engine_name] = _fingerprint(
                get_engine(engine_name).execute(network, MinIdFloodingProtocol())
            )
        assert results["vectorized"] == results["batched"]

    def test_numpy_gate_degrades_to_batched(self, monkeypatch):
        monkeypatch.setattr(vectorized, "_np", None)
        graph = nx.path_graph(6)
        results = {}
        for engine_name in ("batched", "vectorized"):
            network = Network(graph, seed=5)
            results[engine_name] = _fingerprint(
                get_engine(engine_name).execute(
                    network,
                    phases.SamplingPhase(),
                    config=CongestConfig(),
                    global_inputs=GLOBALS,
                )
            )
        assert results["vectorized"] == results["batched"]
