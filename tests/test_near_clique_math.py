"""Unit and property tests for the near-clique mathematics (Definition 1, K, T)."""

from __future__ import annotations

import itertools
import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import near_clique


def small_graphs():
    """Hypothesis strategy: random graphs with up to 12 nodes."""
    return st.builds(
        lambda n, seed: nx.gnp_random_graph(n, 0.4, seed=seed),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=10 ** 6),
    )


class TestDensity:
    def test_clique_has_density_one(self):
        graph = nx.complete_graph(6)
        assert near_clique.density(graph, range(6)) == 1.0
        assert near_clique.near_clique_defect(graph, range(6)) == 0.0

    def test_empty_and_singleton_sets(self):
        graph = nx.complete_graph(4)
        assert near_clique.density(graph, []) == 1.0
        assert near_clique.density(graph, [2]) == 1.0

    def test_independent_set_density_zero(self):
        graph = nx.empty_graph(5)
        assert near_clique.density(graph, range(5)) == 0.0

    def test_ordered_pair_count_doubles_edges(self):
        graph = nx.path_graph(4)
        assert near_clique.ordered_pair_edge_count(graph, range(4)) == 6

    def test_density_of_near_clique_with_one_missing_edge(self):
        graph = nx.complete_graph(5)
        graph.remove_edge(0, 1)
        expected = (20 - 2) / 20.0
        assert near_clique.density(graph, range(5)) == pytest.approx(expected)

    def test_is_near_clique_threshold_exact(self):
        graph = nx.complete_graph(5)
        graph.remove_edge(0, 1)
        defect = near_clique.near_clique_defect(graph, range(5))
        assert near_clique.is_near_clique(graph, range(5), defect)
        assert not near_clique.is_near_clique(graph, range(5), defect - 0.01)

    def test_is_near_clique_rejects_negative_epsilon(self):
        with pytest.raises(ValueError):
            near_clique.is_near_clique(nx.complete_graph(3), range(3), -0.1)

    def test_accepts_adjacency_dict(self):
        graph = nx.complete_graph(4)
        adjacency = near_clique.adjacency_sets(graph)
        assert near_clique.density(adjacency, range(4)) == 1.0

    @given(small_graphs())
    @settings(max_examples=60, deadline=None)
    def test_density_in_unit_interval(self, graph):
        nodes = list(graph.nodes())
        assert 0.0 <= near_clique.density(graph, nodes) <= 1.0

    @given(small_graphs(), st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=60, deadline=None)
    def test_zero_near_clique_iff_clique(self, graph, seed):
        rng = random.Random(seed)
        nodes = list(graph.nodes())
        if len(nodes) < 2:
            return
        subset = rng.sample(nodes, rng.randint(2, len(nodes)))
        is_clique = all(
            graph.has_edge(u, v) for u, v in itertools.combinations(subset, 2)
        )
        assert near_clique.is_near_clique(graph, subset, 0.0) == is_clique

    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_adding_edges_never_decreases_density(self, graph):
        nodes = list(graph.nodes())
        if len(nodes) < 3:
            return
        before = near_clique.density(graph, nodes)
        dense = graph.copy()
        missing = [
            (u, v)
            for u, v in itertools.combinations(nodes, 2)
            if not graph.has_edge(u, v)
        ]
        if missing:
            dense.add_edge(*missing[0])
        after = near_clique.density(dense, nodes)
        assert after >= before - 1e-12


class TestKEps:
    def test_k_of_clique_contains_clique(self):
        graph = nx.complete_graph(6)
        k = near_clique.k_eps(graph, {0, 1, 2}, epsilon=0.0)
        assert {3, 4, 5} <= k
        # Members of X are not adjacent to themselves, so with epsilon=0 and
        # |X| = 3 a member needs all three neighbours including itself: out.
        assert 0 not in k

    def test_k_with_slack_readmits_members(self):
        graph = nx.complete_graph(6)
        k = near_clique.k_eps(graph, {0, 1, 2}, epsilon=0.4)
        assert {0, 1, 2, 3, 4, 5} == k

    def test_k_of_empty_set_is_everything(self):
        graph = nx.path_graph(4)
        assert near_clique.k_eps(graph, set(), 0.1) == set(range(4))

    def test_k_excludes_poorly_connected(self):
        graph = nx.complete_graph(5)
        graph.add_node(9)
        graph.add_edge(9, 0)
        k = near_clique.k_eps(graph, {0, 1, 2, 3}, epsilon=0.1)
        assert 9 not in k
        assert 4 in k

    def test_k_respects_explicit_universe(self):
        graph = nx.complete_graph(6)
        k = near_clique.k_eps(graph, {0, 1}, epsilon=0.0, universe={2, 3})
        assert k == {2, 3}

    @given(small_graphs(), st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=50, deadline=None)
    def test_k_monotone_in_epsilon(self, graph, epsilon):
        nodes = list(graph.nodes())
        if len(nodes) < 2:
            return
        x = set(nodes[: max(1, len(nodes) // 3)])
        smaller = near_clique.k_eps(graph, x, epsilon)
        larger = near_clique.k_eps(graph, x, min(0.99, epsilon + 0.3))
        assert smaller <= larger


class TestTEps:
    def test_t_of_clique_recovers_clique_outside_x(self):
        # With a small epsilon the members of X themselves fail the K test
        # (they are not their own neighbours), but every other clique vertex
        # is recovered; with a larger epsilon the X members are readmitted.
        graph = nx.complete_graph(8)
        t_small = near_clique.t_eps(graph, {0, 1, 2}, epsilon=0.2)
        assert t_small == {3, 4, 5, 6, 7}
        t_large = near_clique.t_eps(graph, {0, 1, 2}, epsilon=0.45)
        assert t_large == set(range(8))

    def test_t_subset_of_inner_k(self):
        graph = nx.gnp_random_graph(20, 0.3, seed=3)
        x = {0, 1, 2, 3}
        t = near_clique.t_eps(graph, x, epsilon=0.25)
        inner = near_clique.k_eps(graph, x, 2 * 0.25 ** 2)
        assert t <= inner

    def test_t_empty_when_x_disconnected_from_graph(self):
        graph = nx.empty_graph(6)
        assert near_clique.t_eps(graph, {0, 1}, 0.2) == set()

    def test_lemma_5_3_holds_on_random_graphs(self):
        # Every T_eps(X) with t members must be an (n/t)*eps-near clique.
        rng = random.Random(5)
        for seed in range(8):
            graph = nx.gnp_random_graph(24, 0.35, seed=seed)
            epsilon = 0.2
            nodes = list(graph.nodes())
            x = set(rng.sample(nodes, 4))
            t = near_clique.t_eps(graph, x, epsilon)
            if len(t) <= 1:
                continue
            bound = near_clique.lemma_5_3_defect_bound(len(nodes), len(t), epsilon)
            assert near_clique.near_clique_defect(graph, t) <= bound + 1e-9

    def test_lemma_5_3_bound_clipping(self):
        assert near_clique.lemma_5_3_defect_bound(100, 1, 0.5) == 0.0
        assert near_clique.lemma_5_3_defect_bound(100, 2, 0.5) == 1.0
        assert near_clique.lemma_5_3_defect_bound(100, 50, 0.1) == pytest.approx(0.2)


class TestCoreSetAndRepresentativeness:
    def test_core_of_clique_is_whole_clique(self):
        # For a strict clique of size d, every member has d-1 internal
        # neighbours, so the core C = K_{eps^2}(D) ∩ D is all of D as soon as
        # eps^2 * d >= 1 (here 0.04 * 40 = 1.6).
        graph = nx.complete_graph(40)
        core = near_clique.core_set(graph, range(40), epsilon=0.2)
        assert core == set(range(40))

    def test_core_empty_for_tiny_clique(self):
        # Below the 1/eps^2 threshold the self-exclusion makes C empty,
        # which is consistent with Lemma 5.4's (then vacuous) lower bound.
        graph = nx.complete_graph(10)
        assert near_clique.core_set(graph, range(10), epsilon=0.2) == set()

    def test_core_lemma_5_4_bound(self):
        # Build a near-clique, check |C| >= (1-eps)|D| - 1/eps^2.
        graph = nx.complete_graph(40)
        rng = random.Random(1)
        pairs = list(itertools.combinations(range(40), 2))
        rng.shuffle(pairs)
        for u, v in pairs[: int(0.008 * len(pairs))]:
            graph.remove_edge(u, v)
        epsilon = 0.2
        assert near_clique.is_near_clique(graph, range(40), epsilon ** 3)
        core = near_clique.core_set(graph, range(40), epsilon)
        bound = near_clique.lemma_5_4_core_lower_bound(40, epsilon)
        assert len(core) >= bound

    def test_representative_for_exact_clique_sample(self):
        graph = nx.complete_graph(30)
        d = set(range(30))
        c = near_clique.core_set(graph, d, 0.2)
        x_star = {0, 5, 10}
        assert near_clique.is_representative(graph, d, c, x_star, 0.2)

    def test_not_representative_for_disjoint_sample(self):
        graph = nx.complete_graph(20)
        graph.add_nodes_from(range(20, 40))
        # X* drawn outside the clique cannot represent it.
        d = set(range(20))
        c = near_clique.core_set(graph, d, 0.2)
        x_star = {25, 30}
        assert not near_clique.is_representative(graph, d, c, x_star, 0.2)


class TestTheoremBoundHelpers:
    def test_size_lower_bound_formula(self):
        # (1 - 13*0.1/2)*1000 - 1/0.01 = 350 - 100.
        assert near_clique.theorem_5_7_size_lower_bound(1000, 0.1) == pytest.approx(250.0)
        # With epsilon -> 0 the bound approaches |D| from below.
        assert near_clique.theorem_5_7_size_lower_bound(1000, 0.0) == 1000.0

    def test_defect_bound_clips_to_one(self):
        assert near_clique.theorem_5_7_defect_bound(0.2, 0.5) == 1.0

    def test_defect_bound_small_epsilon(self):
        value = near_clique.theorem_5_7_defect_bound(0.05, 0.5)
        assert value == pytest.approx((0.05 / 0.5) / (1 - 0.325))
        assert value <= 2 * 0.05 / 0.5

    def test_defect_bound_requires_positive_delta(self):
        with pytest.raises(ValueError):
            near_clique.theorem_5_7_defect_bound(0.1, 0.0)


class TestSubsetIndexing:
    def test_round_trip(self):
        members = (3, 7, 11, 20)
        for index in range(1, 16):
            subset = near_clique.subset_from_index(members, index)
            assert near_clique.index_of_subset(members, subset) == index

    def test_index_zero_is_empty(self):
        assert near_clique.subset_from_index((1, 2), 0) == frozenset()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            near_clique.subset_from_index((1, 2), 4)
        with pytest.raises(ValueError):
            near_clique.subset_from_index((1, 2), -1)

    def test_foreign_member_rejected(self):
        with pytest.raises(ValueError):
            near_clique.index_of_subset((1, 2), {3})

    def test_iter_nonempty_counts(self):
        members = (4, 8, 15)
        subsets = list(near_clique.iter_nonempty_subsets(members))
        assert len(subsets) == 7
        assert all(subset for _, subset in subsets)

    def test_all_subsets_of_size(self):
        subsets = list(near_clique.all_subsets_of_size((1, 2, 3, 4), 2))
        assert len(subsets) == 6

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=8, unique=True))
    def test_canonical_members_sorted(self, members):
        canonical = near_clique.canonical_members(members)
        assert list(canonical) == sorted(set(members))

    @given(
        st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=8, unique=True),
        st.data(),
    )
    def test_round_trip_property(self, members, data):
        members = near_clique.canonical_members(members)
        index = data.draw(st.integers(min_value=0, max_value=(1 << len(members)) - 1))
        subset = near_clique.subset_from_index(members, index)
        assert near_clique.index_of_subset(members, subset) == index


class TestSharedPredicates:
    def test_meets_fraction_exact_boundary(self):
        assert near_clique.meets_fraction(8, 10, 0.2)
        assert not near_clique.meets_fraction(7, 10, 0.2)

    def test_meets_fraction_zero_total(self):
        assert near_clique.meets_fraction(0, 0, 0.3)

    def test_popcount(self):
        assert near_clique.popcount(0) == 0
        assert near_clique.popcount(0b1011) == 3

    def test_neighbor_mask(self):
        members = (2, 5, 9)
        mask = near_clique.neighbor_mask(members, [5, 9, 100])
        assert mask == 0b110

    @given(
        st.integers(min_value=0, max_value=2 ** 16 - 1),
        st.integers(min_value=0, max_value=2 ** 16 - 1),
    )
    def test_popcount_of_and_bounded(self, a, b):
        assert near_clique.popcount(a & b) <= min(
            near_clique.popcount(a), near_clique.popcount(b)
        )
