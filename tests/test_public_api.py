"""Tests for the package's public surface (imports, __all__, quickstart flow)."""

from __future__ import annotations

import random

import pytest

import repro


class TestPublicSurface:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.baselines
        import repro.congest
        import repro.core
        import repro.graphs
        import repro.primitives
        import repro.proptest

        assert repro.congest.__doc__ and repro.core.__doc__

    def test_congest_all_exports_exist(self):
        import repro.congest as congest

        for name in congest.__all__:
            assert hasattr(congest, name), name

    def test_primitives_all_exports_exist(self):
        import repro.primitives as primitives

        for name in primitives.__all__:
            assert hasattr(primitives, name), name


class TestQuickstartFlow:
    """The README quickstart, executed end to end."""

    def test_quickstart(self):
        graph, planted = repro.generators.planted_near_clique(
            n=80, clique_fraction=0.5, epsilon=0.2 ** 3, background_p=0.05, seed=7
        )
        runner = repro.DistNearCliqueRunner(
            epsilon=0.2, sample_probability=0.08, rng=random.Random(7)
        )
        result = runner.run(graph)
        assert not result.aborted
        assert set(result.labels) == set(graph.nodes())
        # Density helpers exposed at top level agree with the result's view.
        members = result.largest_cluster()
        if members:
            assert repro.density(graph, members) == pytest.approx(
                result.largest_cluster_density(graph)
            )

    def test_boosted_quickstart(self):
        graph, planted = repro.generators.planted_near_clique(
            n=60, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=3
        )
        result = repro.BoostedNearCliqueRunner(
            epsilon=0.2, sample_probability=0.08, repetitions=4, rng=random.Random(1)
        ).run(graph)
        assert result.recall_of(planted.members) >= 0.5

    def test_parameters_helper(self):
        p = repro.recommended_sample_probability(1000, 0.2, 0.5, max_expected_sample=10)
        assert 0 < p < 1
        params = repro.AlgorithmParameters(epsilon=0.2, sample_probability=p)
        assert params.epsilon == 0.2

    def test_k_and_t_operators_exposed(self):
        import networkx as nx

        graph = nx.complete_graph(6)
        assert repro.k_eps(graph, {0, 1}, 0.5) == set(range(6))
        assert repro.t_eps(graph, {0}, 0.4) == set(range(1, 6))
        assert repro.is_near_clique(graph, range(6), 0.0)
        assert repro.near_clique_defect(graph, range(6)) == 0.0
