"""Tests for algorithm parameters and the result record."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.congest.metrics import RunMetrics
from repro.core.params import (
    AlgorithmParameters,
    expected_sample_size,
    recommended_sample_probability,
)
from repro.core.result import CandidateSet, NearCliqueResult


class TestExpectedSampleSize:
    def test_increases_as_epsilon_shrinks(self):
        assert expected_sample_size(0.1, 0.5) > expected_sample_size(0.2, 0.5)

    def test_increases_as_delta_shrinks(self):
        assert expected_sample_size(0.2, 0.25) > expected_sample_size(0.2, 0.5)

    def test_matches_formula(self):
        import math

        eps, delta = 0.2, 0.5
        expected = math.log(1 / (eps * delta)) / (eps ** 4 * delta)
        assert expected_sample_size(eps, delta) == pytest.approx(expected)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_sample_size(0.0, 0.5)
        with pytest.raises(ValueError):
            expected_sample_size(0.2, 0.0)
        with pytest.raises(ValueError):
            expected_sample_size(1.5, 0.5)


class TestRecommendedSampleProbability:
    def test_probability_in_unit_interval(self):
        p = recommended_sample_probability(100, 0.2, 0.5)
        assert 0.0 <= p <= 1.0

    def test_cap_applies(self):
        uncapped = recommended_sample_probability(10 ** 6, 0.1, 0.3)
        capped = recommended_sample_probability(10 ** 6, 0.1, 0.3, max_expected_sample=10)
        assert capped <= uncapped
        assert capped == pytest.approx(10 / 10 ** 6)

    def test_small_n_clips_to_one(self):
        assert recommended_sample_probability(3, 0.1, 0.3) == 1.0

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            recommended_sample_probability(0, 0.2, 0.5)

    @given(
        st.integers(min_value=10, max_value=10 ** 5),
        st.floats(min_value=0.05, max_value=0.4),
        st.floats(min_value=0.1, max_value=1.0),
    )
    def test_always_a_probability(self, n, eps, delta):
        p = recommended_sample_probability(n, eps, delta, max_expected_sample=20)
        assert 0.0 <= p <= 1.0


class TestAlgorithmParameters:
    def test_valid_construction(self):
        params = AlgorithmParameters(epsilon=0.2, sample_probability=0.1)
        assert params.k_inner_epsilon == pytest.approx(0.08)

    def test_epsilon_range_enforced(self):
        with pytest.raises(ValueError):
            AlgorithmParameters(epsilon=0.0, sample_probability=0.1)
        with pytest.raises(ValueError):
            AlgorithmParameters(epsilon=1.0, sample_probability=0.1)

    def test_probability_range_enforced(self):
        with pytest.raises(ValueError):
            AlgorithmParameters(epsilon=0.2, sample_probability=-0.1)
        with pytest.raises(ValueError):
            AlgorithmParameters(epsilon=0.2, sample_probability=1.5)

    def test_negative_guards_rejected(self):
        with pytest.raises(ValueError):
            AlgorithmParameters(epsilon=0.2, sample_probability=0.1, max_sample_size=-1)
        with pytest.raises(ValueError):
            AlgorithmParameters(epsilon=0.2, sample_probability=0.1, min_output_size=-2)
        with pytest.raises(ValueError):
            AlgorithmParameters(
                epsilon=0.2, sample_probability=0.1, step4f_sample_size=0
            )

    def test_for_promise_builds_capped_probability(self):
        params = AlgorithmParameters.for_promise(n=200, epsilon=0.2, delta=0.5)
        assert 0 < params.sample_probability <= 14.0 / 200 + 1e-9

    def test_for_promise_forwards_kwargs(self):
        params = AlgorithmParameters.for_promise(
            n=100, epsilon=0.2, delta=0.5, min_output_size=7
        )
        assert params.min_output_size == 7


def _result_fixture():
    graph = nx.complete_graph(6)
    graph.add_edges_from([(6, 7)])
    labels = {v: (0 if v < 5 else None) for v in graph.nodes()}
    labels[7] = 7
    metrics = RunMetrics(rounds=12, max_message_bits=20)
    candidate = CandidateSet(
        component_root=0,
        component_members=frozenset({0, 1}),
        subset_index=3,
        subset=frozenset({0, 1}),
        members=frozenset({0, 1, 2, 3, 4}),
        survived=True,
    )
    result = NearCliqueResult(
        labels=labels,
        candidates=[candidate],
        sample=frozenset({0, 1}),
        components=(frozenset({0, 1}),),
        epsilon=0.1,
        metrics=metrics,
    )
    return graph, result


class TestNearCliqueResult:
    def test_clusters_group_by_label(self):
        _, result = _result_fixture()
        clusters = result.clusters
        assert clusters[0] == frozenset({0, 1, 2, 3, 4})
        assert clusters[7] == frozenset({7})

    def test_largest_cluster(self):
        _, result = _result_fixture()
        assert result.largest_cluster() == frozenset({0, 1, 2, 3, 4})

    def test_cluster_of(self):
        _, result = _result_fixture()
        assert result.cluster_of(3) == frozenset({0, 1, 2, 3, 4})
        assert result.cluster_of(5) == frozenset()

    def test_labelled_nodes(self):
        _, result = _result_fixture()
        assert result.labelled_nodes == frozenset({0, 1, 2, 3, 4, 7})

    def test_density_and_defect(self):
        graph, result = _result_fixture()
        assert result.largest_cluster_density(graph) == 1.0
        assert result.largest_cluster_defect(graph) == 0.0

    def test_recall(self):
        _, result = _result_fixture()
        assert result.recall_of({0, 1, 2, 3, 4, 5}) == pytest.approx(5 / 6)
        assert result.recall_of(set()) == 1.0

    def test_meets_theorem_when_bounds_vacuous(self):
        graph, result = _result_fixture()
        # epsilon=0.1 and tiny planted size: the size bound is negative, so
        # the predicate reduces to the defect check (density 1.0 passes).
        assert result.meets_theorem_5_7(graph, planted_size=5, delta=0.5)

    def test_summary_fields(self):
        _, result = _result_fixture()
        summary = result.summary()
        assert summary["largest_cluster"] == 5.0
        assert summary["rounds"] == 12.0
        assert summary["max_message_bits"] == 20.0
        assert summary["aborted"] == 0.0

    def test_empty_result(self):
        result = NearCliqueResult(labels={0: None, 1: None})
        assert result.largest_cluster() == frozenset()
        assert result.clusters == {}
        assert result.summary()["rounds"] == 0.0


class TestCandidateSet:
    def test_size_and_density(self):
        graph = nx.complete_graph(4)
        candidate = CandidateSet(
            component_root=0,
            component_members=frozenset({0}),
            subset_index=1,
            subset=frozenset({0}),
            members=frozenset({0, 1, 2, 3}),
            survived=True,
        )
        assert candidate.size == 4
        assert candidate.density(graph) == 1.0
