"""Property tests for the packed boundary wire codec.

The process backend ships every cross-shard message through
:mod:`repro.congest.sharding.wire`; a codec bug there would surface as a
differential failure several layers up, so this suite pins the codec's own
contract directly: every value in the payload vocabulary round-trips
exactly, bit estimates survive (including explicit overrides), send order
is preserved, and the sender-side interning of broadcast messages is
reconstructed on the decode side.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest.message import (
    Inbound,
    Message,
    estimate_payload_bits,
    make_counter_message,
    make_id_message,
)
from repro.congest.sharding.wire import (
    WireDecoder,
    WireEncoder,
    decode_payload,
    encode_payload,
)

#: The full wire vocabulary of ``estimate_payload_bits``: scalars plus
#: arbitrarily nested tuples of scalars.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),  # NaN has its own test (NaN != NaN)
    st.text(max_size=40),
)
payloads = st.recursive(
    _scalars, lambda children: st.tuples() | st.lists(children, max_size=5).map(tuple), max_leaves=12
)


def _roundtrip(payload):
    buf = bytearray()
    encode_payload(payload, buf)
    value, offset = decode_payload(bytes(buf), 0)
    assert offset == len(buf), "decoder did not consume the whole encoding"
    return value


class TestPayloadCodec:
    @settings(max_examples=300, deadline=None)
    @given(payloads)
    def test_roundtrip_identity(self, payload):
        value = _roundtrip(payload)
        assert value == payload
        assert type(value) is type(payload)
        # The decoded value is indistinguishable to the bit-accounting layer.
        assert estimate_payload_bits(value) == estimate_payload_bits(payload)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(payloads, max_size=6))
    def test_concatenated_payloads_keep_boundaries(self, items):
        buf = bytearray()
        for item in items:
            encode_payload(item, buf)
        blob = bytes(buf)
        offset = 0
        decoded = []
        for _ in items:
            value, offset = decode_payload(blob, offset)
            decoded.append(value)
        assert offset == len(blob)
        assert decoded == items

    def test_nan_and_signed_zero_bit_exact(self):
        assert math.isnan(_roundtrip(float("nan")))
        assert math.copysign(1.0, _roundtrip(-0.0)) == -1.0
        assert math.copysign(1.0, _roundtrip(0.0)) == 1.0
        assert _roundtrip(float("inf")) == float("inf")

    def test_bool_int_types_not_conflated(self):
        assert _roundtrip(True) is True
        assert _roundtrip(1) == 1 and _roundtrip(1) is not True
        assert type(_roundtrip(0)) is int

    def test_huge_integers(self):
        for value in (2 ** 200, -(2 ** 200), 2 ** 63, -(2 ** 63) - 1):
            assert _roundtrip(value) == value

    def test_rejects_non_vocabulary_payloads(self):
        for bad in ([1, 2], {"a": 1}, {1, 2}, object()):
            with pytest.raises(TypeError):
                encode_payload(bad, bytearray())


# The exact values where a fixed-width codec would overflow or where the
# LEB128 continuation bit flips.  Python ints are unbounded and the varint
# has no width cap, so every one of these must round-trip exactly — 2^63−1
# and its neighbours are where a C-style int64 implementation breaks.
_INT64_MAX = 2 ** 63 - 1
_INT64_MIN = -(2 ** 63)
_VARINT_BOUNDARIES = sorted(
    {
        0,
        1,
        -1,
        2,
        -2,
        _INT64_MAX,
        _INT64_MAX - 1,
        _INT64_MAX + 1,
        _INT64_MIN,
        _INT64_MIN + 1,
        _INT64_MIN - 1,
        # LEB128 7-bit group edges: each is the first value needing one more
        # continuation byte (and zigzag halves the usable magnitude).
        *(2 ** (7 * k) for k in range(1, 11)),
        *(2 ** (7 * k) - 1 for k in range(1, 11)),
        *(-(2 ** (7 * k)) for k in range(1, 11)),
    }
)


class TestVarintBoundaries:
    """Satellite: pin the zigzag-LEB128 integer codec at its edges."""

    @pytest.mark.parametrize("value", _VARINT_BOUNDARIES)
    def test_boundary_integers_roundtrip(self, value):
        decoded = _roundtrip(value)
        assert decoded == value
        assert type(decoded) is int

    @settings(max_examples=200, deadline=None)
    @given(
        st.one_of(
            st.integers(min_value=_INT64_MIN - 2, max_value=_INT64_MIN + 2),
            st.integers(min_value=_INT64_MAX - 2, max_value=_INT64_MAX + 2),
            st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
        )
    )
    def test_near_64_bit_integers_roundtrip(self, value):
        assert _roundtrip(value) == value

    def test_zigzag_keeps_small_magnitudes_short(self):
        # Zigzag exists so small negatives do not pay the worst-case width:
        # |value| < 64 must fit in tag + one varint byte either sign.
        for value in range(-63, 64):
            buf = bytearray()
            encode_payload(value, buf)
            assert len(buf) == 2, (value, bytes(buf))

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.sampled_from(_VARINT_BOUNDARIES), min_size=1, max_size=8))
    def test_boundary_blob_roundtrip(self, values):
        # A concatenated blob of extreme payloads keeps its boundaries: a
        # varint that mis-consumed one byte would desynchronise the rest.
        payload = tuple(values)
        buf = bytearray()
        encode_payload(payload, buf)
        encode_payload(("trailer", 0), buf)
        blob = bytes(buf)
        first, offset = decode_payload(blob, 0)
        second, offset = decode_payload(blob, offset)
        assert first == payload
        assert second == ("trailer", 0)
        assert offset == len(blob)


@st.composite
def _message_strategy(draw):
    kind = draw(st.sampled_from(["bfs.explore", "nc.kcount", "ping", "le.flood"]))
    payload = draw(payloads)
    if draw(st.booleans()):
        # Explicit bit override, as make_id_message / make_counter_message use.
        return Message(kind=kind, payload=payload, bits=draw(st.integers(1, 10_000)))
    return Message(kind=kind, payload=payload)


class TestBatchCodec:
    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 500), st.integers(0, 500), _message_strategy()),
            max_size=20,
        )
    )
    def test_batch_roundtrip_preserves_order_bits_and_senders(self, deliveries):
        receivers = [r for r, _, _ in deliveries]
        inbounds = [Inbound(sender=s, message=m) for _, s, m in deliveries]
        encoder, decoder = WireEncoder(), WireDecoder()
        batch = encoder.encode(receivers, inbounds)
        assert batch.deliveries == len(deliveries)
        out_receivers, out_inbounds = decoder.decode(batch)
        assert out_receivers == receivers, "send order of receivers lost"
        assert [i.sender for i in out_inbounds] == [i.sender for i in inbounds]
        assert [i.kind for i in out_inbounds] == [i.kind for i in inbounds]
        assert [i.message.bits for i in out_inbounds] == [
            i.message.bits for i in inbounds
        ], "bit estimates must survive the wire"
        for original, decoded in zip(inbounds, out_inbounds):
            if original.payload == original.payload:  # skip NaN-containing
                assert decoded.message == original.message

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_channel_kind_table_stays_synchronized_across_batches(self, data):
        encoder, decoder = WireEncoder(), WireDecoder()
        seen_kinds = set()
        for _ in range(data.draw(st.integers(1, 5))):
            messages = data.draw(st.lists(_message_strategy(), max_size=8))
            inbounds = [Inbound(sender=i, message=m) for i, m in enumerate(messages)]
            batch = encoder.encode(list(range(len(inbounds))), inbounds)
            # Only genuinely new kinds ride along, each exactly once ever.
            assert set(batch.new_kinds).isdisjoint(seen_kinds)
            assert len(set(batch.new_kinds)) == len(batch.new_kinds)
            seen_kinds.update(batch.new_kinds)
            _, decoded = decoder.decode(batch)
            assert [i.kind for i in decoded] == [m.kind for m in messages]

    def test_broadcast_interning_reconstructed(self):
        message = make_id_message("bfs.explore", node_id=3, n=64)
        shared = Inbound(sender=3, message=message)
        other = Inbound(sender=5, message=Message(kind="ping"))
        encoder, decoder = WireEncoder(), WireDecoder()
        batch = encoder.encode([0, 1, 2, 0], [shared, shared, other, shared])
        # One table entry for the broadcast, referenced three times.
        assert len(batch.senders) == 2
        assert batch.deliveries == 4
        _, decoded = decoder.decode(batch)
        assert decoded[0] is decoded[1] is decoded[3]
        assert decoded[0] is not decoded[2]
        assert decoded[0].message.bits == message.bits

    def test_counter_message_bits_survive(self):
        # make_counter_message charges Theta(log n) for the counter, not the
        # Python int's width — the wire must not re-derive bits from payload.
        message = make_counter_message("nc.kcount", value=3, n=4096)
        encoder, decoder = WireEncoder(), WireDecoder()
        batch = encoder.encode([9], [Inbound(sender=1, message=message)])
        _, (decoded,) = decoder.decode(batch)
        assert decoded.message.bits == message.bits
        assert decoded.message.bits != Message(kind="nc.kcount", payload=(3,)).bits

    def test_empty_batch(self):
        encoder, decoder = WireEncoder(), WireDecoder()
        batch = encoder.encode([], [])
        assert batch.deliveries == 0 and batch.wire_bytes() == 0
        assert decoder.decode(batch) == ([], [])

    def test_wire_bytes_counts_columns_and_payloads(self):
        encoder = WireEncoder()
        message = Message(kind="k", payload="abcd")
        batch = encoder.encode([1], [Inbound(sender=2, message=message)])
        assert batch.wire_bytes() >= len(batch.payloads) + 8 * 5
