"""Lint fixture: a protocol that honours every rule of the engine contract.

``tests/test_lint.py`` asserts the analyzer reports zero findings here —
the rules must stay silent on idiomatic protocol code, not just fire on bad
code.  The protocol mirrors the repo's house style: ``ctx.rng`` for
randomness, sorted iteration before sends, tuple payloads of wire-vocabulary
scalars, O(log n)-sized messages, and only the public NodeContext API.
"""

from repro.congest.message import Message
from repro.congest.node import NodeContext, Protocol


class CleanEchoProtocol(Protocol):
    """Each node samples one neighbour with ctx.rng and echoes its id."""

    name = "clean-echo"

    def on_start(self, ctx: NodeContext) -> None:
        neighbors = sorted(ctx.neighbors)
        if not neighbors:
            ctx.write_output(("isolated", ctx.node_id))
            ctx.halt()
            return
        pick = neighbors[ctx.rng.randrange(len(neighbors))]
        ctx.send(pick, Message(kind="echo", payload=(ctx.node_id,)))

    def on_round(self, ctx: NodeContext, inbox) -> None:
        for message in inbox:
            ctx.write_output(("heard", message.payload[0]))
        ctx.halt()

    def collect_output(self, ctx: NodeContext):
        return tuple(sorted(ctx.state.get("out", ())))
