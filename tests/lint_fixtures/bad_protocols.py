"""Deliberately-defective protocols: exactly one violation per lint rule.

This module is a *lint fixture*, never imported or executed — the analyzer
works on source text only.  Each offending line carries an ``# expect: ID``
marker; ``tests/test_lint.py`` parses the markers and asserts that
``repro lint`` reports exactly those (rule id, line) pairs and nothing else.
"""

import random
import threading

from repro.congest.message import Message
from repro.congest.node import NodeContext, Protocol
from repro.congest.pipeline import PhaseEffects


class BadRandomnessProtocol(Protocol):
    """DET001 — module-level RNG instead of the per-node ctx.rng stream."""

    name = "bad-randomness"

    def on_start(self, ctx: NodeContext) -> None:
        if random.random() < 0.5:  # expect: DET001
            ctx.halt()


class BadSetOrderProtocol(Protocol):
    """DET002 — hash-ordered set iteration decides the send order."""

    name = "bad-set-order"

    def on_start(self, ctx: NodeContext) -> None:
        for neighbor in set(ctx.neighbors):  # expect: DET002
            ctx.send(neighbor, Message(kind="probe", payload=(0,)))


class BadIdOrderProtocol(Protocol):
    """DET003 — object addresses used as an ordering key."""

    name = "bad-id-order"

    def on_round(self, ctx: NodeContext, inbox) -> None:
        ranked = sorted(inbox, key=id)  # expect: DET003
        if ranked:
            ctx.write_output(ranked[0].sender)


class BadStateProtocol(Protocol):
    """PROC001 — a closure stored in pickled per-node state."""

    name = "bad-state"

    def on_start(self, ctx: NodeContext) -> None:
        ctx.state["scorer"] = lambda value: value + 1  # expect: PROC001


class BadLockProtocol(Protocol):
    """PROC001 — a lock stored on the protocol object that crosses the pipe."""

    name = "bad-lock"

    def on_start(self, ctx: NodeContext) -> None:
        self.guard = threading.Lock()  # expect: PROC001


_HITS = 0


class BadGlobalProtocol(Protocol):
    """PROC002 — module-global mutation diverges across worker processes."""

    name = "bad-global"

    def on_round(self, ctx: NodeContext, inbox) -> None:
        global _HITS  # expect: PROC002
        _HITS += 1


class BadPayloadProtocol(Protocol):
    """WIRE001 — a list payload, outside the wire vocabulary."""

    name = "bad-payload"

    def on_start(self, ctx: NodeContext) -> None:
        ctx.send_all(Message(kind="adj", payload=[1, 2, 3]))  # expect: WIRE001


class BadBudgetProtocol(Protocol):
    """BDG001 — the whole neighbour list in one message (Θ(Δ log n) bits)."""

    name = "bad-budget"

    def on_start(self, ctx: NodeContext) -> None:
        ctx.send_all(Message(kind="adj", payload=tuple(ctx.neighbors)))  # expect: BDG001


class BadHaltProtocol(Protocol):
    """HOOK001 — a send enqueued after local termination."""

    name = "bad-halt"

    def on_start(self, ctx: NodeContext) -> None:
        ctx.halt()
        ctx.send_all(Message(kind="late", payload=(1,)))  # expect: HOOK001


class BadPrivateProtocol(Protocol):
    """HOOK002 — context mutation through engine-internal fields."""

    name = "bad-private"

    def on_round(self, ctx: NodeContext, inbox) -> None:
        ctx._halted = True  # expect: HOOK002


class BadKernelProtocol(Protocol):
    """HOOK003 — a kernel with no callback semantics to be identical to."""

    name = "bad-kernel"

    def vectorized_kernel(self):  # expect: HOOK003
        return object()


class BadEffectsProtocol(Protocol):
    """PIPE001 — a PhaseEffects declaration the hooks do not honour."""

    name = "bad-effects"

    def effects(self) -> PhaseEffects:
        return PhaseEffects(reads=("token",), writes=("token",))

    def on_round(self, ctx: NodeContext, inbox) -> None:
        ctx.state["winner"] = ctx.state.get("token")  # expect: PIPE001
