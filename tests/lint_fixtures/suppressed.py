"""Lint fixture exercising the suppression machinery.

Lines 1–2 of violations are silenced (inline and standalone comment forms),
then one suppression is stale (``SUP001``) and one names a rule id that does
not exist (``SUP002``).  ``tests/test_lint.py`` asserts the silenced rules do
NOT appear and that exactly the two SUP findings do.
"""

import random

from repro.congest.message import Message
from repro.congest.node import NodeContext, Protocol


class SuppressedProtocol(Protocol):
    """Both violations below are deliberately justified away."""

    name = "suppressed"

    def on_start(self, ctx: NodeContext) -> None:
        jitter = random.random()  # repro-lint: ignore[DET001] fixture: inline form
        # repro-lint: ignore[WIRE001] fixture: standalone form covers next line
        ctx.send_all(Message(kind="raw", payload=[jitter]))


class StaleSuppressionProtocol(Protocol):
    """The line below is clean, so its suppression is unused -> SUP001."""

    name = "stale"

    def on_start(self, ctx: NodeContext) -> None:
        ctx.halt()  # repro-lint: ignore[HOOK001] nothing fires here


class UnknownRuleProtocol(Protocol):
    """A suppression naming a nonexistent rule id -> SUP002."""

    name = "unknown-rule"

    def on_start(self, ctx: NodeContext) -> None:
        ctx.halt()  # repro-lint: ignore[NOPE999]
