"""Tests for the Section 3 baselines and the centralized comparators."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.analysis import theory
from repro.baselines.centralized import (
    charikar_peeling,
    greedy_dense_k_subgraph,
    peel_to_near_clique,
    quasi_clique_local_search,
)
from repro.baselines.neighbors import neighbors_neighbors
from repro.baselines.shingles import (
    GLOBAL_EPSILON,
    GLOBAL_MIN_SIZE,
    ShinglesProtocol,
    shingles_run,
)
from repro.congest.config import CongestConfig
from repro.congest.message import id_bits_for
from repro.congest.network import Network
from repro.congest.scheduler import run_protocol
from repro.core import near_clique
from repro.graphs import generators


class TestShinglesCentralized:
    def test_candidate_sets_partition_labelled_nodes(self):
        graph = nx.gnp_random_graph(30, 0.2, seed=4)
        result = shingles_run(graph, rng=random.Random(1))
        covered = set()
        for candidate in result.candidates:
            assert not (candidate.members & covered)
            covered |= candidate.members
        assert covered == set(graph.nodes())

    def test_labels_point_to_closed_neighborhood_minimum(self):
        graph = nx.path_graph(8)
        shingles = {v: 100 - v for v in graph.nodes()}  # node 7 has the minimum
        result = shingles_run(graph, shingles=shingles)
        assert result.labels[7] == 7
        assert result.labels[6] == 7
        assert result.labels[5] == 6  # cannot see node 7, picks its best neighbour

    def test_explicit_duplicate_shingles_rejected(self):
        graph = nx.path_graph(4)
        with pytest.raises(ValueError):
            shingles_run(graph, shingles={0: 1, 1: 1, 2: 2, 3: 3})

    def test_clique_with_global_minimum_inside_is_found(self):
        graph, planted = generators.planted_near_clique(40, 0.5, 0.0, 0.02, seed=6)
        shingles = {v: v + 1000 for v in graph.nodes()}
        shingles[0] = 0  # global minimum inside the planted clique
        result = shingles_run(graph, shingles=shingles)
        best = result.best_candidate()
        assert best is not None
        # The candidate set contains the whole clique (possibly diluted).
        assert planted.members <= best.members

    def test_best_qualifying_respects_thresholds(self):
        graph = nx.complete_graph(6)
        result = shingles_run(graph, rng=random.Random(2))
        assert result.best_qualifying(min_size=3, epsilon=0.0) is not None
        assert result.best_qualifying(min_size=10, epsilon=0.0) is None


class TestClaimOne:
    """Claim 1: the shingles algorithm fails on the Figure 1 family."""

    @pytest.mark.parametrize("delta", [0.3, 0.5])
    def test_no_qualifying_candidate_for_any_minimum_position(self, delta):
        n = 80
        graph, partition = generators.shingles_counterexample(n=n, delta=delta)
        n_actual = graph.number_of_nodes()
        epsilon = 0.9 * theory.claim_1_epsilon_threshold(delta)
        required = theory.claim_1_required_size(n_actual, delta, epsilon)
        # Place the global minimum in each of the four blocks in turn: in
        # every case no candidate set is both large and dense enough.
        for block in ("C1", "C2", "I1", "I2"):
            owner = min(partition[block])
            shingles = {v: v + 10 for v in graph.nodes()}
            shingles[owner] = 0
            result = shingles_run(graph, shingles=shingles)
            assert not result.achieves(epsilon, int(required))

    def test_case1_density_matches_paper_formula(self):
        delta = 0.5
        graph, partition = generators.shingles_counterexample(n=120, delta=delta)
        owner = min(partition["C1"])
        shingles = {v: v + 10 for v in graph.nodes()}
        shingles[owner] = 0
        result = shingles_run(graph, shingles=shingles)
        candidate = next(c for c in result.candidates if owner in c.members)
        # The candidate is exactly C1 ∪ C2 ∪ I1 with density 2δ/(1+δ).
        expected_members = partition["C1"] | partition["C2"] | partition["I1"]
        assert candidate.members == expected_members
        assert candidate.density == pytest.approx(
            theory.claim_1_case1_density(delta), abs=0.02
        )

    def test_dist_near_clique_succeeds_where_shingles_fails(self):
        from repro.core.reference import CentralizedNearCliqueFinder

        delta = 0.5
        graph, partition = generators.shingles_counterexample(n=80, delta=delta)
        epsilon = 0.1
        finder = CentralizedNearCliqueFinder(graph, epsilon)
        # A sample inside the clique is representative; the algorithm finds
        # (almost) the whole clique C1 ∪ C2.
        sample = set(sorted(partition["C1"])[:2]) | set(sorted(partition["C2"])[:1])
        result = finder.run_with_sample(sample)
        clique = partition["clique"]
        assert len(result.largest_cluster() & clique) >= 0.9 * len(clique)
        assert result.largest_cluster_density(graph) >= 0.9


class TestShinglesProtocol:
    def test_protocol_runs_in_constant_rounds(self):
        graph, _ = generators.planted_near_clique(40, 0.5, 0.0, 0.05, seed=8)
        network = Network(graph, seed=3)
        result = run_protocol(
            network,
            ShinglesProtocol(),
            config=CongestConfig().with_log_budget(40),
            global_inputs={GLOBAL_EPSILON: 0.2, GLOBAL_MIN_SIZE: 3},
        )
        assert result.metrics.rounds <= 5

    def test_accepted_sets_are_near_cliques(self):
        graph, _ = generators.planted_near_clique(50, 0.5, 0.0, 0.05, seed=9)
        epsilon = 0.2
        network = Network(graph, seed=5)
        result = run_protocol(
            network,
            ShinglesProtocol(),
            config=CongestConfig().with_log_budget(50),
            global_inputs={GLOBAL_EPSILON: epsilon, GLOBAL_MIN_SIZE: 4},
        )
        clusters = {}
        for node, label in result.outputs.items():
            if label is not None:
                clusters.setdefault(label, set()).add(node)
        for members in clusters.values():
            if len(members) >= 4:
                assert near_clique.density(graph, members) >= 1 - epsilon - 0.05

    def test_messages_respect_log_budget(self):
        graph = nx.gnp_random_graph(64, 0.1, seed=2)
        config = CongestConfig().with_log_budget(64)
        result = run_protocol(
            Network(graph, seed=1),
            ShinglesProtocol(),
            config=config,
            global_inputs={GLOBAL_EPSILON: 0.2, GLOBAL_MIN_SIZE: 3},
        )
        assert result.metrics.max_message_bits <= config.message_bit_budget


class TestNeighborsNeighbors:
    def test_finds_planted_clique_exactly(self):
        graph, planted = generators.planted_near_clique(30, 0.4, 0.0, 0.03, seed=3)
        result = neighbors_neighbors(graph)
        assert planted.members <= result.largest_clique()

    def test_output_sets_are_cliques(self):
        graph = nx.gnp_random_graph(25, 0.3, seed=7)
        result = neighbors_neighbors(graph)
        for clique in result.cliques:
            assert near_clique.density(graph, clique) == 1.0

    def test_surviving_cliques_disjoint(self):
        graph = nx.gnp_random_graph(25, 0.3, seed=9)
        result = neighbors_neighbors(graph)
        seen = set()
        for clique in result.cliques:
            assert not (clique & seen)
            seen |= clique

    def test_message_size_exceeds_congest_budget(self):
        # The whole point of ruling this baseline out: messages carry entire
        # adjacency lists, i.e. Θ(Δ log n) bits, far above c·log n.
        graph, _ = generators.planted_near_clique(60, 0.5, 0.0, 0.1, seed=4)
        result = neighbors_neighbors(graph)
        budget = CongestConfig().with_log_budget(60).message_bit_budget
        assert result.max_message_bits > budget

    def test_local_computation_cost_reported(self):
        graph = nx.complete_graph(12)
        result = neighbors_neighbors(graph)
        assert result.cliques_enumerated >= 12


class TestCentralizedComparators:
    def test_charikar_on_planted_clique(self):
        graph, planted = generators.planted_near_clique(50, 0.4, 0.0, 0.02, seed=5)
        members, score = charikar_peeling(graph)
        assert len(planted.members & members) >= 0.8 * len(planted.members)
        assert score >= (len(planted.members) - 1) / 2.0 - 1

    def test_charikar_empty_graph(self):
        members, score = charikar_peeling(nx.Graph())
        assert members == frozenset() and score == 0.0

    def test_greedy_dks_size_exact(self):
        graph, _ = generators.planted_near_clique(40, 0.4, 0.0, 0.05, seed=6)
        assert len(greedy_dense_k_subgraph(graph, 10)) == 10
        assert greedy_dense_k_subgraph(graph, 0) == frozenset()
        assert len(greedy_dense_k_subgraph(graph, 999)) == 40

    def test_greedy_dks_prefers_planted_clique(self):
        graph, planted = generators.planted_near_clique(50, 0.4, 0.0, 0.03, seed=7)
        k = len(planted.members)
        found = greedy_dense_k_subgraph(graph, k)
        assert len(found & planted.members) >= 0.8 * k

    def test_peel_to_near_clique_outputs_near_clique(self):
        graph, _ = generators.planted_near_clique(60, 0.4, 0.01, 0.06, seed=8)
        for epsilon in (0.05, 0.1, 0.3):
            members = peel_to_near_clique(graph, epsilon)
            assert near_clique.is_near_clique(graph, members, epsilon)

    def test_peel_with_explicit_start(self):
        graph = nx.complete_graph(10)
        members = peel_to_near_clique(graph, 0.0, start=range(5))
        assert members == frozenset(range(5))

    def test_quasi_clique_outputs_near_clique(self):
        graph, planted = generators.planted_near_clique(50, 0.4, 0.01, 0.05, seed=9)
        epsilon = 0.1
        members = quasi_clique_local_search(graph, epsilon, seed=3)
        assert near_clique.is_near_clique(graph, members, epsilon)
        assert len(members) >= 0.5 * len(planted.members)

    def test_quasi_clique_empty_graph(self):
        assert quasi_clique_local_search(nx.Graph(), 0.1) == frozenset()
