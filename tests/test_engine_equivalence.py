"""Differential harness: every engine must be bit-identical to ReferenceEngine.

The contract (module docstring of :mod:`repro.congest.engine`) is that for
every protocol, graph, seed and configuration every registered engine —
``batched``, ``async`` and ``sharded`` today — produces the same per-node
outputs, the
same round/pulse count, and the same protocol message/bit metrics including
the per-round trace.  Engine-specific control overhead (the async engine's
acks and safety notifications) is excluded from the fingerprint and checked
separately.  This suite runs every protocol in ``repro.primitives`` (plus
the full ``DistNearCliqueRunner`` pipeline, the boosted wrapper, the
tolerant tester's distributed companion, and the shingles baseline, whose
overridden ``finished`` exercises the engines' compatibility paths) under
each engine on a pool of seeded graphs and asserts exact equality.

Every test that compares a backend against the reference is parametrized by
the backend's registry name, so a failure names the diverging engine in its
test id — which is also what lets CI run the suite once per engine with
``-k <engine>``.  The sharded engine's process backend (worker processes
exchanging packed boundary batches) gets its own arm,
:class:`TestProcessBackend`, whose ids carry ``process`` for the same
reason.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.baselines.shingles import ShinglesProtocol
from repro.congest.config import CongestConfig
from repro.congest.engine import ReferenceEngine, available_engines, get_engine
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Protocol
from repro.congest.scheduler import run_protocol
from repro.core.boosting import BoostedNearCliqueRunner
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.graphs import generators
from repro.proptest.tolerant import TolerantNearCliqueTester
from repro.primitives.bfs_tree import (
    KEY_PARTICIPANT,
    MinIdBFSTreeProtocol,
    ParentNotificationProtocol,
)
from repro.primitives.broadcast import TreeBroadcastProtocol
from repro.primitives.convergecast import (
    KEY_COLLECTED,
    KEY_LOCAL_COUNTERS,
    ConvergecastCollectProtocol,
    ConvergecastSumProtocol,
)
from repro.primitives.leader_election import MinIdFloodingProtocol

#: The backends differentially tested against the reference oracle.
FAST_ENGINES = tuple(
    name for name in available_engines() if name != ReferenceEngine.name
)


def _graph_pool():
    """~10 seeded graphs spanning the shapes the protocols care about."""
    pool = [
        ("path", nx.path_graph(8)),
        ("star", nx.star_graph(9)),
        ("cycle", nx.cycle_graph(11)),
        ("complete", nx.complete_graph(7)),
        ("two-triangles", nx.Graph([(0, 1), (1, 2), (0, 2), (10, 11), (11, 12), (10, 12)])),
        ("isolates", nx.Graph()),
    ]
    pool[-1][1].add_nodes_from(range(5))
    pool[-1][1].add_edge(0, 1)
    for seed in (2, 5, 9):
        g = nx.gnp_random_graph(24, 0.18, seed=seed)
        pool.append(("gnp-%d" % seed, g))
    planted, _ = generators.planted_near_clique(
        n=40, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=7
    )
    pool.append(("planted", planted))
    return pool


GRAPHS = _graph_pool()
GRAPH_IDS = [name for name, _ in GRAPHS]


def _trace(metrics):
    return [
        (
            r.round_index,
            r.messages_sent,
            r.bits_sent,
            r.max_message_bits,
            r.edges_used,
            r.active_nodes,
        )
        for r in metrics.per_round
    ]


def _fingerprint(result):
    """Everything the contract promises to keep identical, as one value.

    Control overhead (``ack_messages`` / ``safety_messages``) is
    deliberately absent: it is engine-specific by design.
    """
    m = result.metrics
    return (
        result.outputs,
        m.rounds,
        m.total_messages,
        m.total_bits,
        m.max_message_bits,
        m.max_messages_per_round,
        _trace(m),
    )


def _participants(graph):
    return {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}


def _run_primitive_suite(graph, engine, **config_fields):
    """The full primitive pipeline on one network, as the runner chains it."""
    network = Network(graph, seed=1234)
    config = CongestConfig(engine=engine, **config_fields).with_log_budget(
        max(2, network.n)
    )
    per_node = _participants(graph)
    fingerprints = []

    flood = run_protocol(
        network, MinIdFloodingProtocol(), config=config, per_node_inputs=per_node
    )
    fingerprints.append(_fingerprint(flood))

    tree = run_protocol(
        network, MinIdBFSTreeProtocol(), config=config, per_node_inputs=per_node
    )
    fingerprints.append(_fingerprint(tree))

    children = run_protocol(
        network, ParentNotificationProtocol(), config=config, reuse_contexts=True
    )
    fingerprints.append(_fingerprint(children))

    collected = run_protocol(
        network, ConvergecastCollectProtocol(), config=config, reuse_contexts=True
    )
    fingerprints.append(_fingerprint(collected))

    broadcast = run_protocol(
        network,
        TreeBroadcastProtocol(input_key=KEY_COLLECTED, output_key="bcast_out"),
        config=config,
        reuse_contexts=True,
    )
    fingerprints.append(_fingerprint(broadcast))

    counters = {v: {KEY_LOCAL_COUNTERS: {1: 1, 2: v % 3}} for v in network.node_ids}
    network.build_contexts(per_node_inputs=counters, fresh=False)
    sums = run_protocol(
        network, ConvergecastSumProtocol(), config=config, reuse_contexts=True
    )
    fingerprints.append(_fingerprint(sums))
    return fingerprints


class TestPrimitiveEquivalence:
    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("graph", [g for _, g in GRAPHS], ids=GRAPH_IDS)
    def test_primitive_pipeline_identical(self, graph, engine):
        reference = _run_primitive_suite(graph, "reference")
        candidate = _run_primitive_suite(graph, engine)
        assert candidate == reference, "engine %r diverged" % engine

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_partial_participation_identical(self, seed, engine):
        graph = nx.gnp_random_graph(20, 0.25, seed=seed)
        rng = random.Random(seed)
        chosen = {v for v in graph.nodes() if rng.random() < 0.4}
        per_node = {v: {KEY_PARTICIPANT: v in chosen} for v in graph.nodes()}
        results = {}
        for name in ("reference", engine):
            network = Network(graph, seed=77)
            config = CongestConfig(engine=name).with_log_budget(20)
            result = run_protocol(
                network, MinIdBFSTreeProtocol(), config=config, per_node_inputs=per_node
            )
            results[name] = _fingerprint(result)
        assert results[engine] == results["reference"]


class TestOverriddenFinishedEquivalence:
    """ShinglesProtocol overrides ``finished`` — the compatibility path."""

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("seed", [1, 4])
    def test_shingles_identical(self, seed, engine):
        graph, _ = generators.shingles_counterexample(n=24, delta=0.5)
        fingerprints = {}
        for name in ("reference", engine):
            network = Network(graph, seed=seed)
            config = CongestConfig(engine=name).with_log_budget(network.n)
            result = run_protocol(network, ShinglesProtocol(), config=config)
            fingerprints[name] = _fingerprint(result)
        assert fingerprints[engine] == fingerprints["reference"]


class TestRunnerEquivalence:
    """The whole 14-phase DistNearClique pipeline, sampled and forced."""

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_full_runner_identical(self, seed, engine):
        graph, _ = generators.planted_near_clique(
            n=60, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=seed
        )
        results = {}
        for name in ("reference", engine):
            runner = DistNearCliqueRunner(
                epsilon=0.25,
                sample_probability=0.1,
                rng=random.Random(1000 + seed),
                engine=name,
            )
            result = runner.run(graph)
            results[name] = (
                result.labels,
                result.sample,
                result.aborted,
                [c for c in result.candidates],
                result.metrics.rounds,
                result.metrics.total_messages,
                result.metrics.total_bits,
                result.metrics.max_message_bits,
                _trace(result.metrics),
            )
        assert results[engine] == results["reference"]

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_forced_sample_identical(self, engine):
        graph, planted = generators.planted_near_clique(
            n=50, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=11
        )
        sample = sorted(planted.members)[:4] + [0]
        results = {}
        for name in ("reference", engine):
            runner = DistNearCliqueRunner(
                epsilon=0.25,
                sample_probability=0.1,
                max_sample_size=None,
                rng=random.Random(5),
                engine=name,
            )
            result = runner.run(graph, sample=sample)
            results[name] = (result.labels, result.metrics.rounds,
                             result.metrics.total_bits)
        assert results[engine] == results["reference"]


class TestWrapperEquivalence:
    """The boosted wrapper and the tolerant tester, across engines."""

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_boosted_distributed_identical(self, engine):
        graph, _ = generators.planted_near_clique(
            n=40, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=2
        )
        results = {}
        for name in ("reference", engine):
            runner = BoostedNearCliqueRunner(
                epsilon=0.25,
                sample_probability=0.12,
                repetitions=3,
                engine="distributed",
                congest_engine=name,
                rng=random.Random(99),
            )
            result = runner.run(graph)
            results[name] = (
                result.labels,
                result.sample,
                result.metrics.rounds,
                result.metrics.total_messages,
                result.metrics.total_bits,
            )
        assert results[engine] == results["reference"]

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_tolerant_tester_find_distributed_identical(self, engine):
        graph, _ = generators.planted_near_clique(
            n=40, clique_fraction=0.6, epsilon=0.008, background_p=0.05, seed=6
        )
        results = {}
        for name in ("reference", engine):
            tester = TolerantNearCliqueTester(
                rho=0.5,
                epsilon_1=0.25 ** 3,
                epsilon_2=0.25,
                rng=random.Random(17),
                congest_engine=name,
            )
            result = tester.find_distributed(graph)
            results[name] = (
                result.labels,
                result.sample,
                result.metrics.rounds,
                result.metrics.total_bits,
            )
        assert results[engine] == results["reference"]


class TestShardedConfigurations:
    """The sharded engine across shard counts, strategies, and modes.

    The engine-parametrized classes above already run ``"sharded"`` at its
    default configuration (4 contiguous shards, serial); these tests pin
    the contract for every shard count in {1, 2, 4} — including the
    single-shard case, which must degenerate to the batched semantics —
    both partitioner strategies, and the thread-pool execution mode.
    """

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("strategy", ["contiguous", "bfs"])
    def test_shard_counts_identical_to_reference(self, shards, strategy):
        graph, _ = generators.planted_near_clique(
            n=40, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=7
        )
        reference = _run_primitive_suite(graph, "reference")
        candidate = _run_primitive_suite(
            graph, "sharded", shards=shards, shard_strategy=strategy
        )
        assert candidate == reference, (
            "sharded engine diverged with %d %s shards" % (shards, strategy)
        )

    @pytest.mark.parametrize("graph", [g for _, g in GRAPHS], ids=GRAPH_IDS)
    def test_two_shards_identical_on_graph_pool(self, graph):
        reference = _run_primitive_suite(graph, "reference")
        candidate = _run_primitive_suite(graph, "sharded", shards=2)
        assert candidate == reference

    def test_thread_mode_identical_to_serial(self, monkeypatch):
        # Unit-sized rounds fall below the pool's work threshold, which
        # would silently test the serial path twice; pin it to zero so the
        # chunked pool dispatch really runs.
        from repro.congest.sharding.engine import _ShardedRun

        monkeypatch.setattr(_ShardedRun, "POOL_MIN_WORK", 0)
        graph, _ = generators.planted_near_clique(
            n=40, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=9
        )
        serial = _run_primitive_suite(graph, "sharded", shards=4)
        threaded = _run_primitive_suite(
            graph, "sharded", shards=4, shard_workers=4
        )
        assert threaded == serial

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_full_runner_identical_across_shard_counts(self, shards):
        graph, _ = generators.planted_near_clique(
            n=60, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=3
        )
        results = {}
        for name, config in (
            ("reference", CongestConfig(engine="reference")),
            ("sharded", CongestConfig().with_sharding(shards=shards)),
        ):
            runner = DistNearCliqueRunner(
                epsilon=0.25,
                sample_probability=0.1,
                rng=random.Random(1003),
                config=config.with_log_budget(graph.number_of_nodes()),
            )
            result = runner.run(graph)
            results[name] = (
                result.labels,
                result.sample,
                result.metrics.rounds,
                result.metrics.total_messages,
                result.metrics.total_bits,
                _trace(result.metrics),
            )
        assert results["sharded"] == results["reference"]


class TestProcessBackend:
    """The sharded engine's process backend: worker processes + wire codec.

    Every boundary message of these runs crosses a real process boundary in
    the packed wire format, and every context round-trips through pickle at
    the end of each execute — so this arm exercises serialization paths the
    in-process backends never touch.  Test ids contain ``process`` so the
    CI engine matrix selects exactly this arm with ``-k process``.
    """

    @pytest.mark.parametrize("graph", [g for _, g in GRAPHS], ids=GRAPH_IDS)
    def test_primitive_pipeline_identical_process(self, graph):
        reference = _run_primitive_suite(graph, "reference")
        candidate = _run_primitive_suite(
            graph, "sharded", shards=2, shard_backend="process"
        )
        assert candidate == reference, "process backend diverged"

    @pytest.mark.parametrize("shards", [1, 3])
    @pytest.mark.parametrize("strategy", ["contiguous", "bfs", "bfs+refine"])
    def test_process_shards_and_strategies(self, shards, strategy):
        graph, _ = generators.planted_near_clique(
            n=40, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=7
        )
        reference = _run_primitive_suite(graph, "reference")
        candidate = _run_primitive_suite(
            graph,
            "sharded",
            shards=shards,
            shard_strategy=strategy,
            shard_backend="process",
        )
        assert candidate == reference, (
            "process backend diverged with %d %s shards" % (shards, strategy)
        )

    def test_full_runner_identical_process(self):
        graph, _ = generators.planted_near_clique(
            n=60, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=3
        )
        results = {}
        for name, config in (
            ("reference", CongestConfig(engine="reference")),
            ("process", CongestConfig().with_sharding(shards=4, backend="process")),
        ):
            runner = DistNearCliqueRunner(
                epsilon=0.25,
                sample_probability=0.1,
                rng=random.Random(1003),
                config=config.with_log_budget(graph.number_of_nodes()),
            )
            result = runner.run(graph)
            results[name] = (
                result.labels,
                result.sample,
                result.metrics.rounds,
                result.metrics.total_messages,
                result.metrics.total_bits,
                _trace(result.metrics),
            )
        assert results["process"] == results["reference"]

    def test_overridden_finished_identical_process(self):
        # ShinglesProtocol's overridden ``finished`` forces the per-round
        # predicate scan; the workers evaluate it shard-locally.
        graph, _ = generators.shingles_counterexample(n=24, delta=0.5)
        fingerprints = {}
        for name, config in (
            ("reference", CongestConfig(engine="reference")),
            ("process", CongestConfig().with_sharding(shards=3, backend="process")),
        ):
            network = Network(graph, seed=4)
            result = run_protocol(
                network,
                ShinglesProtocol(),
                config=config.with_log_budget(network.n),
            )
            fingerprints[name] = _fingerprint(result)
        assert fingerprints["process"] == fingerprints["reference"]


#: Backend configurations the session arm runs: every engine family, with
#: the process backend (the one persistent sessions actually amortise)
#: carrying "process" in its id so CI's ``-k process`` job includes it.
SESSION_BACKENDS = [
    pytest.param("batched", {}, id="batched"),
    pytest.param("async", {}, id="async"),
    pytest.param("vectorized", {}, id="vectorized"),
    pytest.param("sharded", {"shards": 3}, id="sharded-serial"),
    pytest.param(
        "sharded",
        {"shards": 2, "shard_backend": "process"},
        id="process",
    ),
]

#: Graph subset for the session pipeline arm (the per-call arm already
#: sweeps the full pool per engine; this keeps the session arm affordable
#: while covering sparse, dense, disconnected and planted shapes).
SESSION_GRAPHS = [
    pytest.param(graph, id=name)
    for name, graph in GRAPHS
    if name in ("complete", "isolates", "gnp-2", "planted")
]


def _run_primitive_suite_session(graph, engine, **config_fields):
    """The `_run_primitive_suite` chain, through one persistent session.

    Exercises every session transition: fresh executes (pool spawn),
    ``reuse_contexts`` chains (light re-arm), and a context build *outside*
    the session (the counters step), which the session must detect via the
    network's context epoch and answer with a respawn.
    """
    network = Network(graph, seed=1234)
    config = CongestConfig(
        engine=engine, session_mode="persistent", **config_fields
    ).with_log_budget(max(2, network.n))
    per_node = _participants(graph)
    fingerprints = []
    with get_engine(engine).open_session(network, config) as session:
        flood = run_protocol(
            network,
            MinIdFloodingProtocol(),
            config=config,
            per_node_inputs=per_node,
            session=session,
        )
        fingerprints.append(_fingerprint(flood))

        tree = run_protocol(
            network,
            MinIdBFSTreeProtocol(),
            config=config,
            per_node_inputs=per_node,
            session=session,
        )
        fingerprints.append(_fingerprint(tree))

        children = run_protocol(
            network,
            ParentNotificationProtocol(),
            config=config,
            reuse_contexts=True,
            session=session,
        )
        fingerprints.append(_fingerprint(children))

        collected = run_protocol(
            network,
            ConvergecastCollectProtocol(),
            config=config,
            reuse_contexts=True,
            session=session,
        )
        fingerprints.append(_fingerprint(collected))

        broadcast = run_protocol(
            network,
            TreeBroadcastProtocol(input_key=KEY_COLLECTED, output_key="bcast_out"),
            config=config,
            reuse_contexts=True,
            session=session,
        )
        fingerprints.append(_fingerprint(broadcast))

        counters = {
            v: {KEY_LOCAL_COUNTERS: {1: 1, 2: v % 3}} for v in network.node_ids
        }
        network.build_contexts(per_node_inputs=counters, fresh=False)
        sums = run_protocol(
            network,
            ConvergecastSumProtocol(),
            config=config,
            reuse_contexts=True,
            session=session,
        )
        fingerprints.append(_fingerprint(sums))
    return fingerprints


class _EchoSessionGlobal(Protocol):
    """Reports a global input — pins re-arm delivery of ``global_inputs``."""

    name = "echo-session-global"
    quiesce_terminates = True

    def on_start(self, ctx):
        ctx.send_all(Message(kind="ping"))

    def on_round(self, ctx, inbox):
        ctx.write_output((ctx.globals.get("session_tag"), len(inbox)))
        ctx.halt()


class TestSessionMode:
    """The differential session arm: every backend, one persistent session.

    Bit-identity with the reference oracle must hold when a composite
    chain runs through one :class:`repro.congest.engine.CongestSession`
    instead of per-call executes — for the thin per-call wrappers
    trivially, and for the process backend's persistent session across
    pool reuse, light re-arms and epoch-triggered respawns.  Test ids
    carry ``session`` (class and parameter ids) so CI's session job
    selects exactly this arm with ``-k session``.
    """

    @pytest.mark.parametrize("engine,fields", SESSION_BACKENDS)
    @pytest.mark.parametrize("graph", SESSION_GRAPHS)
    def test_primitive_pipeline_identical_in_session(self, graph, engine, fields):
        reference = _run_primitive_suite(graph, "reference")
        candidate = _run_primitive_suite_session(graph, engine, **fields)
        assert candidate == reference, (
            "engine %r diverged in session mode (%r)" % (engine, fields)
        )

    @pytest.mark.parametrize("engine,fields", SESSION_BACKENDS)
    def test_full_runner_identical_in_session(self, engine, fields):
        graph, _ = generators.planted_near_clique(
            n=60, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=3
        )
        results = {}
        for name, config in (
            ("reference", CongestConfig(engine="reference")),
            (
                "candidate",
                CongestConfig(
                    engine=engine, session_mode="persistent", **fields
                ),
            ),
        ):
            runner = DistNearCliqueRunner(
                epsilon=0.25,
                sample_probability=0.1,
                rng=random.Random(1003),
                config=config.with_log_budget(graph.number_of_nodes()),
            )
            result = runner.run(graph)
            results[name] = (
                result.labels,
                result.sample,
                result.metrics.rounds,
                result.metrics.total_messages,
                result.metrics.total_bits,
                _trace(result.metrics),
            )
        assert results["candidate"] == results["reference"], (
            "runner diverged in session mode under %r (%r)" % (engine, fields)
        )

    @pytest.mark.parametrize("engine,fields", SESSION_BACKENDS)
    def test_full_runner_identical_with_fused_pipeline_session(
        self, engine, fields
    ):
        # ``pipeline_mode="fuse"`` compiles the composite into fused groups
        # (``execute_fused``; on the process backend one arm-seq plus a
        # finish-light chain per group, context fold-back only at the group
        # boundary).  Fusion elides coordination, never semantics: outputs,
        # rounds and the full per-round trace must stay bit-identical to
        # the reference engine with the pipeline off.
        graph, _ = generators.planted_near_clique(
            n=60, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=3
        )
        results = {}
        for name, config in (
            ("reference", CongestConfig(engine="reference")),
            (
                "candidate",
                CongestConfig(
                    engine=engine,
                    session_mode="persistent",
                    pipeline_mode="fuse",
                    **fields,
                ),
            ),
        ):
            runner = DistNearCliqueRunner(
                epsilon=0.25,
                sample_probability=0.1,
                rng=random.Random(1003),
                config=config.with_log_budget(graph.number_of_nodes()),
            )
            result = runner.run(graph)
            results[name] = (
                result.labels,
                result.sample,
                result.metrics.rounds,
                result.metrics.total_messages,
                result.metrics.total_bits,
                _trace(result.metrics),
            )
        assert results["candidate"] == results["reference"], (
            "runner diverged with the fused pipeline under %r (%r)"
            % (engine, fields)
        )

    def test_session_light_rearm_inputs_identical_process(self):
        # Inputs passed *through* session.execute on reuse executes travel
        # the light re-arm path (globals + per-node state deltas over the
        # pipes); they must land exactly as the reference's build_contexts
        # applies them.
        graph = nx.gnp_random_graph(20, 0.25, seed=8)
        per_node = _participants(graph)
        inputs = {v: {KEY_LOCAL_COUNTERS: {1: v % 4, 5: 1}} for v in graph.nodes()}
        results = {}
        for name in ("reference", "session"):
            network = Network(graph, seed=55)
            config = CongestConfig(
                engine="reference" if name == "reference" else "sharded",
                shards=3,
                shard_backend="process",
                session_mode="persistent",
            ).with_log_budget(20)
            with get_engine(config.engine).open_session(network, config) as session:
                chain = []
                tree = run_protocol(
                    network,
                    MinIdBFSTreeProtocol(),
                    config=config,
                    per_node_inputs=per_node,
                    session=session,
                )
                chain.append(_fingerprint(tree))
                children = run_protocol(
                    network,
                    ParentNotificationProtocol(),
                    config=config,
                    reuse_contexts=True,
                    session=session,
                )
                chain.append(_fingerprint(children))
                sums = run_protocol(
                    network,
                    ConvergecastSumProtocol(),
                    config=config,
                    reuse_contexts=True,
                    per_node_inputs=inputs,
                    session=session,
                )
                chain.append(_fingerprint(sums))
                echoed = run_protocol(
                    network,
                    _EchoSessionGlobal(),
                    config=config,
                    reuse_contexts=True,
                    global_inputs={"session_tag": 41},
                    session=session,
                )
                chain.append(_fingerprint(echoed))
            results[name] = chain
        assert results["session"] == results["reference"]
        assert all(
            value[0] == 41 for value in echoed.outputs.values()
        ), "global input did not reach the re-armed workers"


class TestAsyncControlOverhead:
    """The async engine's overhead accounting (engine-specific by design)."""

    def test_control_fields_populated_and_separate(self):
        graph = nx.gnp_random_graph(18, 0.25, seed=3)
        per_node = _participants(graph)
        results = {}
        for name in ("reference", "async"):
            network = Network(graph, seed=21)
            config = CongestConfig(engine=name).with_log_budget(18)
            results[name] = run_protocol(
                network, MinIdBFSTreeProtocol(), config=config, per_node_inputs=per_node
            )
        reference, asynchronous = results["reference"], results["async"]
        # Sync engines report zero overhead; the async engine acknowledges
        # every payload message and floods one safety notification per edge
        # direction per pulse.
        assert reference.metrics.control_messages == 0
        m = asynchronous.metrics
        assert m.ack_messages == m.total_messages
        directed_edges = 2 * graph.number_of_edges()
        assert m.safety_messages == directed_edges * (m.rounds + 1)
        assert m.control_messages == m.ack_messages + m.safety_messages
        # ... and none of it leaks into the protocol totals.
        assert m.total_messages == reference.metrics.total_messages
        assert m.total_bits == reference.metrics.total_bits


class TestEngineRegistry:
    def test_available_engines_sorted(self):
        engines = available_engines()
        assert engines == (
            "async",
            "batched",
            "reference",
            "sharded",
            "vectorized",
        )
        assert engines == tuple(sorted(engines))

    def test_get_engine_by_name(self):
        for name in available_engines():
            assert get_engine(name).name == name

    def test_get_engine_passthrough(self):
        engine = get_engine("batched")
        assert get_engine(engine) is engine

    def test_get_engine_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("warp-drive")
        with pytest.raises(ValueError) as excinfo:
            get_engine("warp-drive")
        for name in available_engines():
            assert name in str(excinfo.value)

    def test_default_engine_is_batched(self):
        # ROADMAP item: the fast path becomes the default once it has
        # survived differential CI; the reference stays the oracle above.
        assert CongestConfig().engine == "batched"
        assert get_engine(None).name == "batched"

    def test_config_carries_engine(self):
        config = CongestConfig().with_engine("async")
        assert config.engine == "async"
        assert config.with_log_budget(64).engine == "async"
        assert config.with_max_rounds(5).engine == "async"

    def test_config_with_sharding(self):
        config = CongestConfig().with_sharding(shards=2, workers=3, strategy="bfs")
        assert config.engine == "sharded"
        assert (config.shards, config.shard_workers) == (2, 3)
        assert config.shard_strategy == "bfs"
        assert config.with_log_budget(64).shards == 2
