"""Chaos suite: fault injection, the barrier watchdog, supervised retry.

The claims under test, in increasing order of machinery:

1. **Fault plans are values** — seeded, validated, picklable, reproducible;
   the same seed always describes the same failures.
2. **The watchdog converts hangs into typed errors** — a worker that sleeps
   through a barrier raises :class:`ShardWorkerTimeout` within the
   configured deadline instead of blocking the coordinator forever, and no
   worker process outlives the failed call.
3. **Supervised retry is invisible in the output** — a persistent process
   session that crashes, hangs or decodes garbage mid-pipeline and recovers
   (phase replay on a fresh pool, or degradation to the serial backend)
   produces a result *bit-identical* to a clean run on the reference
   engine.  That is the whole point of deterministic replay: recovery is an
   implementation detail, not an observable event.

The matrix class at the bottom is the CI chaos job's entry point — it
selects one (scenario, backend) cell per job with ``-k``.
"""

from __future__ import annotations

import dataclasses
import io
import json
import multiprocessing
import pickle
import random
import time

import networkx as nx
import pytest

from repro.congest.config import CongestConfig, RetryPolicy
from repro.congest.errors import (
    ShardWorkerError,
    ShardWorkerTimeout,
    WireCorruptionError,
)
from repro.congest.message import Inbound, Message
from repro.congest.network import Network
from repro.congest.scheduler import run_protocol
from repro.congest.sharding.faults import (
    FAULT_KINDS,
    FAULT_POINTS,
    FaultPlan,
    FaultSpec,
)
from repro.congest.sharding.wire import WireDecoder, WireEncoder
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.core.params import AlgorithmParameters
from repro.primitives.bfs_tree import KEY_PARTICIPANT, MinIdBFSTreeProtocol
from repro.service import NearCliqueDaemon, NearCliqueService


# ----------------------------------------------------------------------
# workloads and oracles
# ----------------------------------------------------------------------
PARAMS = AlgorithmParameters(epsilon=0.3, sample_probability=0.25)

#: Phases of the full near-clique pipeline that fault specs bind to.
PIPELINE_PHASES = (
    "nc-sampling",
    "nc-comp-dissemination",
    "min-id-bfs-tree",
    "nc-vote",
)


def _connected_gnp(n: int, p: float, seed: int) -> nx.Graph:
    graph = nx.gnp_random_graph(n, p, seed=seed)
    nodes = sorted(graph.nodes())
    # A spanning path keeps the workload one component, so every pipeline
    # phase runs exactly once and phase-bound specs fire exactly once.
    graph.add_edges_from(zip(nodes, nodes[1:]))
    return graph


def _fingerprint(result):
    metrics = result.metrics
    return (
        result.labels,
        result.sample,
        result.candidates,
        result.components,
        result.aborted,
        metrics.rounds,
        metrics.total_messages,
        metrics.total_bits,
        metrics.max_message_bits,
    )


def _run_pipeline(graph, config, seed=5):
    runner = DistNearCliqueRunner(
        parameters=PARAMS, rng=random.Random(seed), config=config
    )
    result = runner.run(graph)
    return result, runner.last_session_stats


def _reference_fingerprint(graph, n, seed=5):
    config = CongestConfig(engine="reference").with_log_budget(n)
    result, _ = _run_pipeline(graph, config, seed=seed)
    return _fingerprint(result)


def _faulty_config(n, fault_plan, *, round_timeout=None, retry=None, shards=3):
    return dataclasses.replace(
        CongestConfig(session_mode="persistent")
        .with_sharding(shards=shards, backend="process")
        .with_log_budget(n),
        fault_plan=fault_plan,
        round_timeout=round_timeout,
        retry_policy=retry,
    )


def _assert_no_worker_processes():
    deadline = time.time() + 5.0
    while multiprocessing.active_children() and time.time() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


# ----------------------------------------------------------------------
# fault plans are values
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="point"):
            FaultSpec(point="warmup", kind="crash")
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(point="round", kind="meteor")
        with pytest.raises(ValueError, match="corrupt"):
            FaultSpec(point="finish", kind="corrupt")
        with pytest.raises(ValueError, match="round_index"):
            FaultSpec(point="round", kind="crash", round_index=0)
        with pytest.raises(ValueError, match="hang_seconds"):
            FaultSpec(point="round", kind="hang", hang_seconds=0.0)
        with pytest.raises(ValueError, match="shard"):
            FaultSpec(point="round", kind="crash", shard=-1)

    def test_vocabulary_is_closed(self):
        assert set(FAULT_POINTS) == {"arm", "start", "round", "finish"}
        assert set(FAULT_KINDS) == {"crash", "hang", "eof", "corrupt"}

    def test_seeded_plans_are_reproducible(self):
        kwargs = dict(seed=42, shards=4, phases=PIPELINE_PHASES, faults=3)
        first = FaultPlan.seeded(**kwargs)
        second = FaultPlan.seeded(**kwargs)
        assert first == second
        assert len(first.specs) == 3
        # Every seeded spec is phase-bound: after a respawn the injector's
        # fired-set restarts empty, and only the phase binding prevents the
        # same spec from firing again in every later phase.
        assert all(spec.phase in PIPELINE_PHASES for spec in first.specs)
        assert FaultPlan.seeded(seed=43, shards=4, phases=PIPELINE_PHASES) != first

    def test_for_attempt_threads_the_retry_cursor(self):
        plan = FaultPlan.seeded(seed=1, shards=2, phases=("nc-vote",))
        assert plan.for_attempt(0) is plan
        bumped = plan.for_attempt(2)
        assert bumped.attempt == 2 and bumped.specs == plan.specs

    def test_plans_are_picklable(self):
        plan = FaultPlan.seeded(seed=9, shards=3, phases=PIPELINE_PHASES)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan


# ----------------------------------------------------------------------
# the config surface
# ----------------------------------------------------------------------
class TestConfigKnobs:
    def test_worker_join_timeout_must_be_positive(self):
        assert CongestConfig().worker_join_timeout == 5.0
        assert CongestConfig(worker_join_timeout=0.25).worker_join_timeout == 0.25
        with pytest.raises(ValueError, match="worker_join_timeout"):
            CongestConfig(worker_join_timeout=0.0)
        with pytest.raises(ValueError, match="worker_join_timeout"):
            CongestConfig(worker_join_timeout=-1.0)

    def test_round_timeout_none_or_positive(self):
        assert CongestConfig().round_timeout is None
        assert CongestConfig(round_timeout=2.5).round_timeout == 2.5
        with pytest.raises(ValueError, match="round_timeout"):
            CongestConfig(round_timeout=0.0)

    def test_retry_policy_validation(self):
        policy = RetryPolicy(max_attempts=3, backoff_seconds=0.5)
        assert CongestConfig(retry_policy=policy).retry_policy is policy
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_seconds"):
            RetryPolicy(backoff_seconds=-1.0)
        with pytest.raises(ValueError, match="retry_policy"):
            CongestConfig(retry_policy="twice")

    def test_retry_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, backoff_seconds=0.1, backoff_multiplier=2.0)
        assert policy.delay_before(1) == pytest.approx(0.1)
        assert policy.delay_before(2) == pytest.approx(0.2)
        assert policy.delay_before(3) == pytest.approx(0.4)
        assert RetryPolicy().delay_before(1) == 0.0

    def test_fault_plan_is_duck_checked(self):
        plan = FaultPlan.seeded(seed=0, shards=2, phases=("nc-vote",))
        assert CongestConfig(fault_plan=plan).fault_plan is plan
        with pytest.raises(ValueError, match="fault_plan"):
            CongestConfig(fault_plan="chaos, please")


# ----------------------------------------------------------------------
# wire corruption is a typed, picklable error
# ----------------------------------------------------------------------
class TestWireCorruption:
    def test_garbage_blob_raises_wire_corruption_error(self):
        encoder = WireEncoder()
        decoder = WireDecoder()
        batch = encoder.encode(
            [1, 4],
            [
                Inbound(sender=0, message=Message(kind="ping", payload=(7,))),
                Inbound(sender=2, message=Message(kind="ping", payload=(9,))),
            ],
        )
        corrupted = batch._replace(payloads=b"\xff" * max(1, len(batch.payloads)))
        with pytest.raises(WireCorruptionError):
            decoder.decode(corrupted)

    def test_corruption_error_is_retryable_and_picklable(self):
        error = WireCorruptionError("unknown tag 255")
        assert isinstance(error, ShardWorkerError)
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, WireCorruptionError)
        assert clone.detail == error.detail

    def test_timeout_error_is_picklable(self):
        error = ShardWorkerTimeout((0, 2), 1.5, alive_shards=(2,))
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, ShardWorkerTimeout)
        assert clone.shard_indices == (0, 2)
        assert clone.alive_shards == (2,)
        assert clone.timeout == 1.5
        assert isinstance(clone, ShardWorkerError)


# ----------------------------------------------------------------------
# in-process fault simulation (thread backend)
# ----------------------------------------------------------------------
def _bfs_inputs(graph):
    return {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}


class TestInProcessSimulation:
    def _thread_config(self, plan, *, round_timeout=None):
        return dataclasses.replace(
            CongestConfig().with_sharding(shards=3, workers=2, backend="thread"),
            fault_plan=plan,
            round_timeout=round_timeout,
        ).with_log_budget(30)

    def test_empty_simulated_plan_is_bit_identical_noop(self):
        graph = nx.gnp_random_graph(30, 0.2, seed=12)
        results = {}
        for plan in (None, FaultPlan(simulate=True)):
            network = Network(graph, seed=2)
            result = run_protocol(
                network,
                MinIdBFSTreeProtocol(),
                config=self._thread_config(plan),
                per_node_inputs=_bfs_inputs(graph),
            )
            results[plan is None] = (
                dict(result.outputs),
                result.metrics.rounds,
                result.metrics.total_messages,
            )
        assert results[True] == results[False]

    def test_unsimulated_plan_is_ignored_off_process_backend(self):
        # A real (simulate=False) plan only means something to process
        # workers; the thread backend must run it clean, not crash.
        graph = nx.gnp_random_graph(24, 0.2, seed=4)
        plan = FaultPlan(
            specs=(FaultSpec(point="round", kind="crash", shard=0),)
        )
        result = run_protocol(
            Network(graph, seed=2),
            MinIdBFSTreeProtocol(),
            config=self._thread_config(plan),
            per_node_inputs=_bfs_inputs(graph),
        )
        assert result.outputs


# ----------------------------------------------------------------------
# the barrier watchdog (process backend)
# ----------------------------------------------------------------------
class TestWatchdog:
    def _config(self, plan, *, round_timeout=None, shards=3):
        return dataclasses.replace(
            CongestConfig().with_sharding(shards=shards, backend="process"),
            fault_plan=plan,
            round_timeout=round_timeout,
        ).with_log_budget(30)

    def test_hung_worker_raises_timeout_within_deadline(self):
        graph = _connected_gnp(24, 0.15, seed=3)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    point="round",
                    kind="hang",
                    shard=1,
                    round_index=1,
                    hang_seconds=30.0,
                ),
            )
        )
        started = time.time()
        with pytest.raises(ShardWorkerTimeout) as excinfo:
            run_protocol(
                Network(graph, seed=2),
                MinIdBFSTreeProtocol(),
                config=self._config(plan, round_timeout=1.5),
                per_node_inputs=_bfs_inputs(graph),
            )
        elapsed = time.time() - started
        assert elapsed < 20.0, "watchdog should fire at ~1.5s, not at join"
        assert 1 in excinfo.value.shard_indices
        # The sleeping worker was still alive when the watchdog gave up —
        # that is precisely what distinguishes a hang from a crash.
        assert 1 in excinfo.value.alive_shards
        _assert_no_worker_processes()

    def test_no_timeout_means_blocking_recv_path(self):
        # Clean run with a deadline set: the watchdog must be inert.
        graph = _connected_gnp(24, 0.15, seed=3)
        results = {}
        for timeout in (None, 30.0):
            result = run_protocol(
                Network(graph, seed=2),
                MinIdBFSTreeProtocol(),
                config=self._config(None, round_timeout=timeout),
                per_node_inputs=_bfs_inputs(graph),
            )
            results[timeout] = (dict(result.outputs), result.metrics.rounds)
        assert results[None] == results[30.0]
        _assert_no_worker_processes()


# ----------------------------------------------------------------------
# supervised retry and degradation (the acceptance scenario)
# ----------------------------------------------------------------------
class TestSupervisedRetry:
    N = 48

    def _graph(self):
        return _connected_gnp(self.N, 0.12, seed=3)

    def test_crash_and_hang_mid_pipeline_recover_bit_identically(self):
        # The issue's acceptance scenario: one worker crash in one phase
        # plus one hang in another, both on the persistent process
        # session; the run must complete via phase replay and match the
        # reference engine bit for bit.
        graph = self._graph()
        oracle = _reference_fingerprint(graph, self.N)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    point="round",
                    kind="crash",
                    shard=1,
                    phase="nc-comp-dissemination",
                    round_index=1,
                ),
                FaultSpec(
                    point="round",
                    kind="hang",
                    shard=0,
                    phase="min-id-bfs-tree",
                    round_index=1,
                    hang_seconds=30.0,
                ),
            )
        )
        config = _faulty_config(
            self.N,
            plan,
            round_timeout=2.0,
            retry=RetryPolicy(max_attempts=2),
        )
        result, stats = _run_pipeline(graph, config)
        assert _fingerprint(result) == oracle
        assert stats is not None
        assert stats.retries >= 2, "both faults should have been retried"
        assert stats.timeouts >= 1, "the hang should be a watchdog timeout"
        assert stats.degradations == 0
        assert {event.action for event in stats.recovery_events} == {"retry"}
        _assert_no_worker_processes()

    def test_persistent_failure_degrades_to_serial_bit_identically(self):
        # The same phase fails on the first attempt AND its replay: the
        # supervisor must fall back to the serial sharded backend and
        # still answer bit-identically.
        graph = self._graph()
        oracle = _reference_fingerprint(graph, self.N)
        specs = tuple(
            FaultSpec(
                point="round",
                kind="crash",
                shard=1,
                phase="nc-comp-dissemination",
                round_index=1,
                attempt=attempt,
            )
            for attempt in (0, 1)
        )
        config = _faulty_config(
            self.N,
            FaultPlan(specs=specs),
            retry=RetryPolicy(max_attempts=2),
        )
        result, stats = _run_pipeline(graph, config)
        assert _fingerprint(result) == oracle
        assert stats.degradations == 1
        assert stats.retries == 1  # first replay, which then failed too
        actions = [event.action for event in stats.recovery_events]
        assert actions == ["retry", "degrade"]
        _assert_no_worker_processes()

    def test_fused_group_crash_replays_transactionally_bit_identically(self):
        # ``pipeline_mode="fuse"``: per-phase context fold-backs inside a
        # fused group are elided, so the *group* is the transaction unit —
        # a crash in a mid-group phase must replay the whole group from
        # the pristine group-start contexts and still match the reference
        # engine bit for bit.
        graph = self._graph()
        oracle = _reference_fingerprint(graph, self.N)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    point="round",
                    kind="crash",
                    shard=1,
                    phase="nc-vote",
                    round_index=1,
                ),
            )
        )
        config = dataclasses.replace(
            _faulty_config(self.N, plan, retry=RetryPolicy(max_attempts=2)),
            pipeline_mode="fuse",
        )
        result, stats = _run_pipeline(graph, config)
        assert _fingerprint(result) == oracle
        assert stats.retries == 1
        assert stats.degradations == 0
        (event,) = [e for e in stats.recovery_events if e.action == "retry"]
        # The recovery event names the fused group, not a single phase.
        assert "+" in event.phase and "nc-vote" in event.phase
        # Fusion accounting survives recovery, and phase metrics are not
        # double-counted by the replay (partials are flushed only after
        # the group-final fold).
        assert stats.fused_phases > 0
        labels = [phase.label for phase in stats.phases]
        assert len(labels) == len(set(labels))
        _assert_no_worker_processes()

    def test_fused_group_persistent_failure_degrades_bit_identically(self):
        graph = self._graph()
        oracle = _reference_fingerprint(graph, self.N)
        specs = tuple(
            FaultSpec(
                point="round",
                kind="crash",
                shard=1,
                phase="nc-vote",
                round_index=1,
                attempt=attempt,
            )
            for attempt in (0, 1)
        )
        config = dataclasses.replace(
            _faulty_config(
                self.N, FaultPlan(specs=specs), retry=RetryPolicy(max_attempts=2)
            ),
            pipeline_mode="fuse",
        )
        result, stats = _run_pipeline(graph, config)
        assert _fingerprint(result) == oracle
        assert stats.degradations == 1
        actions = [event.action for event in stats.recovery_events]
        assert actions == ["retry", "degrade"]
        _assert_no_worker_processes()

    def test_no_policy_means_failures_propagate(self):
        graph = self._graph()
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    point="round",
                    kind="crash",
                    shard=1,
                    phase="nc-comp-dissemination",
                    round_index=1,
                ),
            )
        )
        config = _faulty_config(self.N, plan, retry=None)
        with pytest.raises(ShardWorkerError):
            _run_pipeline(graph, config)
        _assert_no_worker_processes()

    def test_abort_when_policy_forbids_degradation(self):
        graph = self._graph()
        specs = tuple(
            FaultSpec(
                point="round",
                kind="crash",
                shard=1,
                phase="nc-comp-dissemination",
                round_index=1,
                attempt=attempt,
            )
            for attempt in (0, 1)
        )
        config = _faulty_config(
            self.N,
            FaultPlan(specs=specs),
            retry=RetryPolicy(max_attempts=2, degrade=False),
        )
        with pytest.raises(ShardWorkerError):
            _run_pipeline(graph, config)
        _assert_no_worker_processes()


class TestChaosDifferential:
    """Randomised plans: whatever the seed injects, the answer is the oracle's."""

    N = 40

    @pytest.mark.parametrize("chaos_seed", [11, 23, 47])
    def test_seeded_chaos_recovers_bit_identically(self, chaos_seed):
        graph = _connected_gnp(self.N, 0.12, seed=6)
        oracle = _reference_fingerprint(graph, self.N)
        plan = FaultPlan.seeded(
            seed=chaos_seed,
            shards=3,
            phases=PIPELINE_PHASES,
            faults=2,
        )
        config = _faulty_config(
            self.N,
            plan,
            round_timeout=5.0,
            retry=RetryPolicy(max_attempts=2),
        )
        result, stats = _run_pipeline(graph, config)
        assert _fingerprint(result) == oracle
        # Seeded specs all live at attempt 0, so the first replay of any
        # failing phase is guaranteed clean: no chaos run may degrade.
        assert stats.degradations == 0
        _assert_no_worker_processes()


# ----------------------------------------------------------------------
# the daemon: input hardening and the timeout error code
# ----------------------------------------------------------------------
def _block_graph(sizes, p=0.9, seed=7) -> nx.Graph:
    rng = random.Random(seed)
    graph = nx.Graph()
    base = 0
    for size in sizes:
        members = list(range(base, base + size))
        graph.add_nodes_from(members)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if rng.random() < p:
                    graph.add_edge(u, v)
        base += size
    return graph


class TestDaemonHardening:
    def test_oversized_line_is_rejected_in_bounded_memory(self):
        service = NearCliqueService(_block_graph([8]), PARAMS)
        out = io.StringIO()
        huge = '{"cmd": "query", "pad": "' + "x" * 4096 + '"}'
        daemon = NearCliqueDaemon(
            service,
            reader=io.StringIO(
                huge + "\n" + '{"cmd": "query"}\n' + '{"cmd": "shutdown"}\n'
            ),
            writer=out,
            max_line_length=256,
        )
        served = daemon.serve_forever()
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert served == 3
        assert responses[0]["ok"] is False
        assert responses[0]["error"]["code"] == "bad-request"
        assert "256" in responses[0]["error"]["message"]
        # The oversized line was drained, not re-parsed as later requests:
        # the follow-up query and the shutdown answer normally.
        assert responses[1]["ok"] is True and responses[1]["cmd"] == "query"
        assert responses[2]["cmd"] == "shutdown"

    def test_exact_limit_line_still_parses(self):
        service = NearCliqueService(_block_graph([8]), PARAMS)
        request = '{"cmd": "query", "seed": 0}'
        out = io.StringIO()
        daemon = NearCliqueDaemon(
            service,
            reader=io.StringIO(request + "\n" + '{"cmd": "shutdown"}\n'),
            writer=out,
            max_line_length=len(request),
        )
        daemon.serve_forever()
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert responses[0]["ok"] is True

    def test_max_line_length_must_be_positive(self):
        service = NearCliqueService(_block_graph([8]), PARAMS)
        with pytest.raises(ValueError, match="max_line_length"):
            NearCliqueDaemon(service, max_line_length=0)

    def test_worker_timeout_answers_typed_error_and_daemon_recovers(self):
        graph = _block_graph([10, 10])
        service = NearCliqueService(graph.copy(), PARAMS)
        real_run = service._runner.run
        hangs = {"left": 1}

        def hang_once(*args, **kwargs):
            if hangs["left"]:
                hangs["left"] -= 1
                raise ShardWorkerTimeout((1,), 2.0, alive_shards=(1,))
            return real_run(*args, **kwargs)

        service._runner.run = hang_once
        out = io.StringIO()
        requests = [
            {"cmd": "query", "seed": 3},
            {"cmd": "query", "seed": 3},
            {"cmd": "stats"},
            {"cmd": "shutdown"},
        ]
        daemon = NearCliqueDaemon(
            service,
            reader=io.StringIO("".join(json.dumps(r) + "\n" for r in requests)),
            writer=out,
        )
        served = daemon.serve_forever()
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert served == 4
        assert responses[0]["ok"] is False
        assert responses[0]["error"]["code"] == "worker-timeout"
        assert responses[1]["ok"] is True
        assert responses[2]["worker_timeouts"] == 1
        assert responses[2]["worker_crashes"] == 0

    def test_session_retries_surface_in_service_stats(self):
        # A service configured with a retry policy absorbs an injected
        # crash silently (the query succeeds); the recovery still shows
        # up in the stats response, harvested from the session ledger.
        graph = _block_graph([10, 10])
        n = graph.number_of_nodes()
        plan = FaultPlan(
            specs=(
                # The sampling phase is start-only (coins flip in on_start,
                # zero rounds), so bind to a phase that actually rounds.
                FaultSpec(
                    point="round",
                    kind="crash",
                    shard=0,
                    phase="nc-comp-dissemination",
                    round_index=1,
                ),
            )
        )
        config = _faulty_config(n, plan, retry=RetryPolicy(max_attempts=2))
        service = NearCliqueService(graph, PARAMS, config=config)
        out = io.StringIO()
        requests = [
            {"cmd": "query", "seed": 3},
            {"cmd": "stats"},
            {"cmd": "shutdown"},
        ]
        daemon = NearCliqueDaemon(
            service,
            reader=io.StringIO("".join(json.dumps(r) + "\n" for r in requests)),
            writer=out,
        )
        daemon.serve_forever()
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert responses[0]["ok"] is True, responses[0]
        assert responses[1]["retries"] == 1
        assert responses[1]["worker_crashes"] == 0  # nothing escaped
        assert responses[1]["degradations"] == 0


# ----------------------------------------------------------------------
# the CI chaos matrix: one (scenario, backend) cell per job via -k
# ----------------------------------------------------------------------
def _matrix_plan(scenario: str, backend: str) -> FaultPlan:
    hang_seconds = 30.0 if backend == "process" else 5.0
    specs = {
        "crash_arm": FaultSpec(point="arm", kind="crash", shard=1),
        "crash_round": FaultSpec(
            point="round", kind="crash", shard=1, round_index=1
        ),
        "hang": FaultSpec(
            point="round",
            kind="hang",
            shard=0,
            round_index=1,
            hang_seconds=hang_seconds,
        ),
        "corrupt_wire": FaultSpec(point="round", kind="corrupt", shard=0),
    }
    return FaultPlan(specs=(specs[scenario],), simulate=backend == "thread")


EXPECTED_ERROR = {
    "crash_arm": ShardWorkerError,
    "crash_round": ShardWorkerError,
    "hang": ShardWorkerTimeout,
    "corrupt_wire": WireCorruptionError,
}


class TestFaultMatrix:
    """Every fault kind surfaces as its typed error on both backends.

    CI runs each cell as its own job:
    ``pytest tests/test_faults.py -k "<scenario> and <backend>"``.
    """

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize(
        "scenario", ["crash_arm", "crash_round", "hang", "corrupt_wire"]
    )
    def test_fault_surfaces_as_typed_error(self, scenario, backend):
        graph = _connected_gnp(24, 0.15, seed=3)
        plan = _matrix_plan(scenario, backend)
        if backend == "process":
            config = CongestConfig().with_sharding(shards=3, backend="process")
        else:
            config = CongestConfig().with_sharding(
                shards=3, workers=2, backend="thread"
            )
        round_timeout = 1.5 if scenario == "hang" else None
        config = dataclasses.replace(
            config, fault_plan=plan, round_timeout=round_timeout
        ).with_log_budget(30)
        started = time.time()
        with pytest.raises(EXPECTED_ERROR[scenario]):
            run_protocol(
                Network(graph, seed=2),
                MinIdBFSTreeProtocol(),
                config=config,
                per_node_inputs=_bfs_inputs(graph),
            )
        assert time.time() - started < 30.0
        if backend == "process":
            _assert_no_worker_processes()
