"""Unit tests for CONGEST messages and bit accounting."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.congest.message import (
    BOOL_BITS,
    KIND_TAG_BITS,
    Inbound,
    Message,
    estimate_payload_bits,
    id_bits_for,
    make_counter_message,
    make_id_message,
)


class TestIdBits:
    def test_two_nodes_need_one_bit(self):
        assert id_bits_for(2) == 1

    def test_power_of_two(self):
        assert id_bits_for(1024) == 10

    def test_non_power_of_two_rounds_up(self):
        assert id_bits_for(1000) == 10
        assert id_bits_for(1025) == 11

    def test_single_node_still_positive(self):
        assert id_bits_for(1) >= 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            id_bits_for(0)
        with pytest.raises(ValueError):
            id_bits_for(-5)

    @given(st.integers(min_value=2, max_value=10 ** 9))
    def test_matches_ceil_log2(self, n):
        assert id_bits_for(n) == max(1, math.ceil(math.log2(n)))


class TestEstimatePayloadBits:
    def test_none_is_one_bit(self):
        assert estimate_payload_bits(None) == 1

    def test_bool(self):
        assert estimate_payload_bits(True) == BOOL_BITS

    def test_small_int(self):
        assert estimate_payload_bits(0) == 2
        assert estimate_payload_bits(1) == 2

    def test_large_int_scales_with_bit_length(self):
        assert estimate_payload_bits(2 ** 20) == 22

    def test_negative_int_counts_magnitude(self):
        assert estimate_payload_bits(-8) == estimate_payload_bits(8)

    def test_string_costs_eight_bits_per_char(self):
        assert estimate_payload_bits("abc") == 24

    def test_tuple_sums_elements_plus_framing(self):
        flat = estimate_payload_bits(5) + estimate_payload_bits(7)
        assert estimate_payload_bits((5, 7)) == flat + 2

    def test_nested_tuple(self):
        assert estimate_payload_bits(((1,), 2)) > estimate_payload_bits((1, 2)) - 4

    def test_rejects_lists(self):
        with pytest.raises(TypeError):
            estimate_payload_bits([1, 2, 3])

    def test_rejects_dicts(self):
        with pytest.raises(TypeError):
            estimate_payload_bits({"a": 1})

    def test_rejects_objects(self):
        with pytest.raises(TypeError):
            estimate_payload_bits(object())

    @given(st.integers(min_value=0, max_value=2 ** 62))
    def test_int_estimate_monotone_in_magnitude(self, value):
        assert estimate_payload_bits(value * 2 + 1) >= estimate_payload_bits(value)


class TestMessage:
    def test_default_bits_include_kind_tag(self):
        message = Message(kind="x", payload=(3,))
        assert message.bits == KIND_TAG_BITS + estimate_payload_bits((3,))

    def test_explicit_bits_respected(self):
        message = Message(kind="x", payload=(3,), bits=99)
        assert message.bits == 99

    def test_zero_bits_rejected(self):
        with pytest.raises(ValueError):
            Message(kind="x", payload=None, bits=0)

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError):
            Message(kind="", payload=None)

    def test_with_bits_returns_new_message(self):
        message = Message(kind="x", payload=(3,))
        recharged = message.with_bits(123)
        assert recharged.bits == 123
        assert recharged.payload == message.payload
        assert message.bits != 123

    def test_frozen(self):
        message = Message(kind="x", payload=(1,))
        with pytest.raises(Exception):
            message.kind = "y"  # type: ignore[misc]


class TestInbound:
    def test_exposes_kind_and_payload(self):
        inbound = Inbound(sender=4, message=Message(kind="k", payload=(9,)))
        assert inbound.kind == "k"
        assert inbound.payload == (9,)
        assert inbound.sender == 4


class TestHelperConstructors:
    def test_id_message_charges_id_width(self):
        message = make_id_message("k", node_id=3, n=1024)
        assert message.bits == KIND_TAG_BITS + 10

    def test_id_message_with_extra(self):
        message = make_id_message("k", node_id=3, n=1024, extra=(1,))
        assert message.bits > KIND_TAG_BITS + 10
        assert message.payload == (3, 1)

    def test_counter_message_charges_at_least_id_width(self):
        message = make_counter_message("k", value=2, n=4096)
        assert message.bits >= KIND_TAG_BITS + 12

    def test_counter_message_larger_than_n(self):
        message = make_counter_message("k", value=10 ** 6, n=16)
        assert message.bits >= KIND_TAG_BITS + 20

    @given(st.integers(min_value=0, max_value=10 ** 6), st.integers(min_value=2, max_value=10 ** 6))
    def test_id_message_scaling_is_logarithmic(self, node_id, n):
        message = make_id_message("k", node_id=node_id % n, n=n)
        assert message.bits <= KIND_TAG_BITS + id_bits_for(n)
