"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in environments without the ``wheel`` package
(``python setup.py develop`` / legacy editable installs).
"""
from setuptools import setup

setup()
